//! Events reported by the engine and cumulative processing statistics.

use dyndens_graph::codec::{put_f64, put_u64, put_u8, ByteReader, CodecError};
use dyndens_graph::VertexSet;

/// A change in the reported set of output-dense subgraphs, produced while
/// processing an edge weight update or a threshold adjustment.
///
/// Events refer to **explicitly materialised** subgraphs. Supergraphs of
/// too-dense subgraphs that are only represented implicitly through the
/// `ImplicitTooDense` optimisation (Section 3.2.3) do not generate events;
/// this mirrors the accounting used in the paper's evaluation (Table 2
/// "excluding output-dense subgraphs that are not represented in the index").
#[derive(Debug, Clone, PartialEq)]
pub enum DenseEvent {
    /// The subgraph's density rose to (or above) the output threshold `T`.
    BecameOutputDense {
        /// The vertices of the subgraph.
        vertices: VertexSet,
        /// Its density after the update.
        density: f64,
    },
    /// The subgraph's density fell below the output threshold `T`.
    NoLongerOutputDense {
        /// The vertices of the subgraph.
        vertices: VertexSet,
        /// Its density after the update.
        density: f64,
    },
}

impl DenseEvent {
    /// The vertex set the event refers to.
    pub fn vertices(&self) -> &VertexSet {
        match self {
            DenseEvent::BecameOutputDense { vertices, .. }
            | DenseEvent::NoLongerOutputDense { vertices, .. } => vertices,
        }
    }

    /// `true` for [`DenseEvent::BecameOutputDense`].
    pub fn is_became(&self) -> bool {
        matches!(self, DenseEvent::BecameOutputDense { .. })
    }

    /// The subgraph's density after the update that produced the event.
    pub fn density(&self) -> f64 {
        match self {
            DenseEvent::BecameOutputDense { density, .. }
            | DenseEvent::NoLongerOutputDense { density, .. } => *density,
        }
    }

    /// Appends the canonical wire encoding used by the serving protocol:
    /// `kind u8 (0 = became, 1 = no-longer) | vertex set | density f64`.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        put_u8(buf, if self.is_became() { 0 } else { 1 });
        self.vertices().encode_into(buf);
        put_f64(buf, self.density());
    }

    /// Decodes one event, rejecting unknown kinds, non-canonical vertex sets
    /// and non-finite densities (engine densities are always finite).
    pub fn decode(r: &mut ByteReader<'_>) -> Result<DenseEvent, CodecError> {
        let kind = r.u8()?;
        let vertices = VertexSet::decode(r)?;
        let density = r.f64()?;
        if !density.is_finite() {
            return Err(CodecError::Invalid("dense event density is not finite"));
        }
        match kind {
            0 => Ok(DenseEvent::BecameOutputDense { vertices, density }),
            1 => Ok(DenseEvent::NoLongerOutputDense { vertices, density }),
            _ => Err(CodecError::Invalid("unknown dense event kind")),
        }
    }
}

/// Cumulative counters describing the work performed by a [`DynDens`]
/// engine instance. Useful for the paper's cost analysis (Section 4.2) and
/// for the benchmark harness.
///
/// [`DynDens`]: crate::DynDens
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Total number of updates processed.
    pub updates: u64,
    /// Number of positive updates processed.
    pub positive_updates: u64,
    /// Number of negative updates processed.
    pub negative_updates: u64,
    /// Number of `explore` invocations (Algorithm 2).
    pub explorations: u64,
    /// Number of cheap explorations performed (Algorithm 1, line 6).
    pub cheap_explorations: u64,
    /// Number of candidate subgraphs whose density was evaluated.
    pub candidates_examined: u64,
    /// Number of newly-dense subgraphs inserted into the index.
    pub subgraphs_inserted: u64,
    /// Number of losing-dense subgraphs evicted from the index.
    pub subgraphs_evicted: u64,
    /// Number of explore-all expansions performed (only when the
    /// `ImplicitTooDense` optimisation is disabled).
    pub explore_all_invocations: u64,
    /// Number of `*` (implicit too-dense) markers created.
    pub star_markers_created: u64,
    /// Number of `*` markers removed.
    pub star_markers_removed: u64,
    /// Number of explorations skipped by the MaxExplore heuristic.
    pub max_explore_skips: u64,
    /// Number of candidates skipped by the DegreePrioritize heuristic.
    pub degree_prioritize_skips: u64,
}

impl EngineStats {
    /// Resets all counters to zero.
    pub fn reset(&mut self) {
        *self = EngineStats::default();
    }

    /// Adds `other`'s counters into `self`.
    ///
    /// Every counter is a plain sum, so merging the per-shard statistics of a
    /// partitioned deployment (see the `dyndens-shard` crate) yields exactly
    /// the work ledger of the fleet as a whole. Destructuring forces this
    /// method to be revisited whenever a counter is added.
    pub fn merge(&mut self, other: &EngineStats) {
        let EngineStats {
            updates,
            positive_updates,
            negative_updates,
            explorations,
            cheap_explorations,
            candidates_examined,
            subgraphs_inserted,
            subgraphs_evicted,
            explore_all_invocations,
            star_markers_created,
            star_markers_removed,
            max_explore_skips,
            degree_prioritize_skips,
        } = other;
        self.updates += updates;
        self.positive_updates += positive_updates;
        self.negative_updates += negative_updates;
        self.explorations += explorations;
        self.cheap_explorations += cheap_explorations;
        self.candidates_examined += candidates_examined;
        self.subgraphs_inserted += subgraphs_inserted;
        self.subgraphs_evicted += subgraphs_evicted;
        self.explore_all_invocations += explore_all_invocations;
        self.star_markers_created += star_markers_created;
        self.star_markers_removed += star_markers_removed;
        self.max_explore_skips += max_explore_skips;
        self.degree_prioritize_skips += degree_prioritize_skips;
    }

    /// Merges an iterator of statistics into a single ledger.
    pub fn merged<'a, I: IntoIterator<Item = &'a EngineStats>>(stats: I) -> EngineStats {
        let mut out = EngineStats::default();
        for s in stats {
            out.merge(s);
        }
        out
    }

    /// Number of counters in the wire encoding of this protocol revision.
    /// Adding a counter to [`EngineStats`] is a wire-format change: bump the
    /// serving protocol version alongside this constant (the destructuring
    /// in [`EngineStats::encode_into`] forces the revisit).
    pub const WIRE_COUNTERS: u8 = 13;

    /// Appends the canonical wire encoding used by the serving protocol:
    /// `n u8 (= 13) | n × counter u64`, counters in declaration order.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        let EngineStats {
            updates,
            positive_updates,
            negative_updates,
            explorations,
            cheap_explorations,
            candidates_examined,
            subgraphs_inserted,
            subgraphs_evicted,
            explore_all_invocations,
            star_markers_created,
            star_markers_removed,
            max_explore_skips,
            degree_prioritize_skips,
        } = self;
        put_u8(buf, Self::WIRE_COUNTERS);
        for counter in [
            updates,
            positive_updates,
            negative_updates,
            explorations,
            cheap_explorations,
            candidates_examined,
            subgraphs_inserted,
            subgraphs_evicted,
            explore_all_invocations,
            star_markers_created,
            star_markers_removed,
            max_explore_skips,
            degree_prioritize_skips,
        ] {
            put_u64(buf, *counter);
        }
    }

    /// Decodes a statistics ledger, rejecting a counter count other than
    /// [`EngineStats::WIRE_COUNTERS`] (a count mismatch means the peer speaks
    /// a different protocol revision).
    pub fn decode(r: &mut ByteReader<'_>) -> Result<EngineStats, CodecError> {
        if r.u8()? != Self::WIRE_COUNTERS {
            return Err(CodecError::Invalid("engine stats counter count mismatch"));
        }
        Ok(EngineStats {
            updates: r.u64()?,
            positive_updates: r.u64()?,
            negative_updates: r.u64()?,
            explorations: r.u64()?,
            cheap_explorations: r.u64()?,
            candidates_examined: r.u64()?,
            subgraphs_inserted: r.u64()?,
            subgraphs_evicted: r.u64()?,
            explore_all_invocations: r.u64()?,
            star_markers_created: r.u64()?,
            star_markers_removed: r.u64()?,
            max_explore_skips: r.u64()?,
            degree_prioritize_skips: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_accessors() {
        let v = VertexSet::from_ids(&[1, 2, 3]);
        let e = DenseEvent::BecameOutputDense {
            vertices: v.clone(),
            density: 1.25,
        };
        assert_eq!(e.vertices(), &v);
        assert!(e.is_became());
        let e = DenseEvent::NoLongerOutputDense {
            vertices: v.clone(),
            density: 0.5,
        };
        assert!(!e.is_became());
        assert_eq!(e.vertices(), &v);
    }

    #[test]
    fn dense_event_wire_round_trip() {
        for event in [
            DenseEvent::BecameOutputDense {
                vertices: VertexSet::from_ids(&[0, 5, 9]),
                density: 1.25,
            },
            DenseEvent::NoLongerOutputDense {
                vertices: VertexSet::from_ids(&[2]),
                density: -0.5,
            },
        ] {
            let mut buf = Vec::new();
            event.encode_into(&mut buf);
            let mut r = ByteReader::new(&buf);
            let back = DenseEvent::decode(&mut r).unwrap();
            assert!(r.is_empty());
            assert_eq!(back, event);
        }
        // Unknown kind byte.
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        VertexSet::from_ids(&[1]).encode_into(&mut buf);
        put_f64(&mut buf, 1.0);
        assert!(matches!(
            DenseEvent::decode(&mut ByteReader::new(&buf)),
            Err(CodecError::Invalid(_))
        ));
        // Non-finite density.
        let mut buf = Vec::new();
        put_u8(&mut buf, 0);
        VertexSet::from_ids(&[1]).encode_into(&mut buf);
        put_f64(&mut buf, f64::NAN);
        assert!(matches!(
            DenseEvent::decode(&mut ByteReader::new(&buf)),
            Err(CodecError::Invalid(_))
        ));
    }

    #[test]
    fn stats_wire_round_trip() {
        let stats = EngineStats {
            updates: 10,
            positive_updates: 7,
            negative_updates: 3,
            explorations: 20,
            cheap_explorations: 5,
            candidates_examined: 100,
            subgraphs_inserted: 12,
            subgraphs_evicted: 4,
            explore_all_invocations: 1,
            star_markers_created: 2,
            star_markers_removed: 1,
            max_explore_skips: 9,
            degree_prioritize_skips: 8,
        };
        let mut buf = Vec::new();
        stats.encode_into(&mut buf);
        assert_eq!(buf.len(), 1 + 13 * 8);
        let mut r = ByteReader::new(&buf);
        assert_eq!(EngineStats::decode(&mut r).unwrap(), stats);
        assert!(r.is_empty());
        // A different counter count is a protocol-revision mismatch.
        buf[0] = 12;
        assert!(matches!(
            EngineStats::decode(&mut ByteReader::new(&buf)),
            Err(CodecError::Invalid(_))
        ));
    }

    #[test]
    fn stats_reset() {
        let mut s = EngineStats {
            updates: 10,
            explorations: 5,
            ..Default::default()
        };
        s.reset();
        assert_eq!(s, EngineStats::default());
    }

    #[test]
    fn stats_merge_sums_every_counter() {
        let a = EngineStats {
            updates: 10,
            positive_updates: 7,
            negative_updates: 3,
            explorations: 20,
            cheap_explorations: 5,
            candidates_examined: 100,
            subgraphs_inserted: 12,
            subgraphs_evicted: 4,
            explore_all_invocations: 1,
            star_markers_created: 2,
            star_markers_removed: 1,
            max_explore_skips: 9,
            degree_prioritize_skips: 8,
        };
        let b = EngineStats {
            updates: 1,
            candidates_examined: 11,
            ..Default::default()
        };
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.updates, 11);
        assert_eq!(merged.candidates_examined, 111);
        assert_eq!(merged.positive_updates, 7);

        let from_iter = EngineStats::merged([&a, &b]);
        assert_eq!(from_iter, merged);
        assert_eq!(
            EngineStats::merged(std::iter::empty()),
            EngineStats::default()
        );
    }
}
