//! Dynamic threshold adjustment at runtime (Section 6, Algorithms 3 and 4).
//!
//! Engagement assumes the output threshold `T` is chosen so that the number of
//! output-dense subgraphs stays meaningful. When stream characteristics drift,
//! `T` must be adjusted: raising it is a simple index scan, lowering it
//! requires exploring around every maintained subgraph (and re-checking every
//! edge of the graph), but both are far cheaper than recomputing the index
//! from scratch by replaying every edge weight as an update.

use dyndens_density::DensityMeasure;
use dyndens_graph::{VertexId, VertexSet};

use crate::engine::DynDens;
use crate::events::DenseEvent;
use crate::index::{NodeId, SubgraphInfo};

impl<D: DensityMeasure> DynDens<D> {
    /// Changes the output density threshold `T` at runtime, incrementally
    /// adjusting the maintained dense subgraphs (Algorithm 3). `delta_it` is
    /// rescaled proportionally to the threshold change so that it stays inside
    /// its validity range.
    ///
    /// Returns the transitions in the reported output-dense set caused by the
    /// threshold change.
    pub fn set_output_threshold(&mut self, new_threshold: f64) -> Vec<DenseEvent> {
        let mut events = Vec::new();
        let old_threshold = self.thresholds().output_threshold();
        if (new_threshold - old_threshold).abs() < f64::EPSILON {
            return events;
        }
        self.epoch += 1;
        // Snapshot the classification of every stored subgraph under the old
        // thresholds before switching.
        let snapshot: Vec<(NodeId, usize, f64, bool)> = self
            .index
            .all_subgraphs()
            .iter()
            .map(|&id| {
                let card = self.index.cardinality(id);
                let score = self.index.score(id);
                let was_output = self.thresholds().is_output_dense(score, card);
                (id, card, score, was_output)
            })
            .collect();

        self.thresholds_mut().set_output_threshold(new_threshold);

        if new_threshold > old_threshold {
            self.increase_threshold(snapshot, &mut events);
        } else {
            self.decrease_threshold(snapshot, &mut events);
        }
        events
    }

    /// Algorithm 3, lines 2-4: a threshold increase can only shrink the dense
    /// set, so a single scan over the index suffices.
    fn increase_threshold(
        &mut self,
        snapshot: Vec<(NodeId, usize, f64, bool)>,
        events: &mut Vec<DenseEvent>,
    ) {
        for (id, card, score, was_output) in snapshot {
            let still_dense = self.thresholds().is_dense(score, card);
            let still_output = self.thresholds().is_output_dense(score, card);
            if self.index.has_star(id) && !self.thresholds().is_too_dense(score, card) {
                // Covered extensions that remain dense under the new threshold
                // must be materialised before the marker disappears.
                self.demote_star_for_threshold(id, score);
            }
            if !still_dense {
                if was_output {
                    events.push(DenseEvent::NoLongerOutputDense {
                        vertices: self.index.vertices(id),
                        density: self.thresholds().measure().density(score, card),
                    });
                }
                self.index.remove(id);
            } else if was_output && !still_output {
                events.push(DenseEvent::NoLongerOutputDense {
                    vertices: self.index.vertices(id),
                    density: self.thresholds().measure().density(score, card),
                });
            }
        }
    }

    /// Algorithm 3, lines 5-9: a threshold decrease can surface previously
    /// sparse subgraphs. Every edge is re-examined as a base case, and every
    /// previously dense subgraph is explored with [`Self::update_explore`]
    /// (Algorithm 4).
    fn decrease_threshold(
        &mut self,
        snapshot: Vec<(NodeId, usize, f64, bool)>,
        events: &mut Vec<DenseEvent>,
    ) {
        // Previously stored subgraphs that cross the output threshold are
        // reported; they stay in the index either way.
        for &(id, card, score, was_output) in &snapshot {
            if !was_output && self.thresholds().is_output_dense(score, card) {
                events.push(DenseEvent::BecameOutputDense {
                    vertices: self.index.vertices(id),
                    density: self.thresholds().measure().density(score, card),
                });
            }
        }

        // Base case (Algorithm 3, lines 6-7): every edge of the graph may now
        // be a dense 2-subgraph.
        let edges: Vec<(VertexId, VertexId, f64)> = self.graph().edges().collect();
        for (u, v, w) in edges {
            if self.thresholds().is_dense(w, 2) && self.index.find(&[u, v]).is_none() {
                let pair = VertexSet::pair(u, v);
                self.insert_for_threshold(&pair, w, events);
            }
        }

        // Explore around every previously dense subgraph (Algorithm 3,
        // lines 8-9). Newly inserted subgraphs are explored recursively inside
        // `update_explore`.
        let old_dense: Vec<(VertexSet, f64)> = snapshot
            .iter()
            .map(|&(id, _, score, _)| (self.index.vertices(id), score))
            .collect();
        for (verts, score) in old_dense {
            self.update_explore(&verts, score, true, events);
        }
        // Newly inserted 2-subgraphs also need exploration (they are the seeds
        // for subgraphs that contain no previously-dense part).
        let new_pairs: Vec<(VertexSet, f64)> = self
            .index
            .iter()
            .filter(|(_, _, info)| info.discovered_epoch == self.epoch)
            .map(|(_, v, info)| (v, info.score))
            .collect();
        for (verts, score) in new_pairs {
            self.update_explore(&verts, score, false, events);
        }
    }

    /// Algorithm 4 (`UpdateExplore`): augments a dense subgraph with one
    /// neighbouring vertex (or, for too-dense subgraphs, with every vertex —
    /// or a `*` marker under the ImplicitTooDense optimisation), recursing on
    /// discoveries that were not dense before the threshold change.
    ///
    /// `was_dense_before` distinguishes previously stored subgraphs (whose
    /// stable-dense extensions are themselves part of the snapshot and will be
    /// explored separately) from subgraphs discovered during this threshold
    /// change.
    fn update_explore(
        &mut self,
        verts: &VertexSet,
        score: f64,
        was_dense_before: bool,
        events: &mut Vec<DenseEvent>,
    ) {
        let card = verts.len();
        if card >= self.thresholds().n_max() {
            return;
        }
        let _ = was_dense_before;
        let too_dense = self.thresholds().is_too_dense(score, card);
        let ext_card = card + 1;

        if too_dense && self.config().implicit_too_dense {
            if let Some(id) = self.index.find(verts.as_slice()) {
                if !self.index.has_star(id) {
                    self.index.set_star(id, true);
                }
            }
        }

        let gamma = self.graph().neighborhood_scores(verts);
        let mut candidates: Vec<(VertexId, f64)> = if too_dense && !self.config().implicit_too_dense
        {
            // Explore-all (Algorithm 4, lines 2-5).
            (0..self.graph().vertex_count() as u32)
                .map(VertexId)
                .filter(|&y| !verts.contains(y))
                .map(|y| (y, gamma.get(&y).copied().unwrap_or(0.0)))
                .collect()
        } else {
            gamma
                .iter()
                .filter(|(&y, _)| !verts.contains(y))
                .map(|(&y, &g)| (y, g))
                .collect()
        };
        candidates.sort_unstable_by_key(|&(y, _)| y);

        for (y, gamma_y) in candidates {
            let ext_score = score + gamma_y;
            if !self.thresholds().is_dense(ext_score, ext_card) {
                continue;
            }
            let ext = verts.with(y);
            match self.index.find(ext.as_slice()) {
                Some(id) => {
                    // Already stored: either it was dense before the change
                    // (and will be explored from the snapshot), or it was
                    // already discovered during this change. Either way, stop.
                    let _ = id;
                }
                None => {
                    self.insert_for_threshold(&ext, ext_score, events);
                    self.update_explore(&ext, ext_score, false, events);
                }
            }
        }
    }

    fn insert_for_threshold(
        &mut self,
        verts: &VertexSet,
        score: f64,
        events: &mut Vec<DenseEvent>,
    ) {
        let id = self.index.insert(
            verts.as_slice(),
            SubgraphInfo {
                score,
                discovered_epoch: self.epoch,
                discovered_iteration: 0,
            },
        );
        if self.thresholds().is_output_dense(score, verts.len()) {
            events.push(DenseEvent::BecameOutputDense {
                vertices: verts.clone(),
                density: self.thresholds().measure().density(score, verts.len()),
            });
        }
        if self.config().implicit_too_dense && self.thresholds().is_too_dense(score, verts.len()) {
            self.index.set_star(id, true);
        }
    }

    /// Star demotion during a threshold increase: mirrors
    /// `DynDens::demote_star` but is driven by a threshold change rather than
    /// a score change.
    fn demote_star_for_threshold(&mut self, base: NodeId, base_score: f64) {
        self.index.set_star(base, false);
        let card = self.index.cardinality(base);
        if card + 1 > self.thresholds().n_max() {
            return;
        }
        let verts = self.index.vertices(base);
        let gamma = self.graph().neighborhood_scores(&verts);
        let mut to_insert: Vec<(VertexSet, f64)> = Vec::new();
        for (&y, &gamma_y) in &gamma {
            if verts.contains(y) {
                continue;
            }
            let ext_score = base_score + gamma_y;
            if self.thresholds().is_dense(ext_score, card + 1)
                && self.index.find(verts.with(y).as_slice()).is_none()
            {
                to_insert.push((verts.with(y), ext_score));
            }
        }
        for (ext, ext_score) in to_insert {
            let id = self.index.insert(
                ext.as_slice(),
                SubgraphInfo {
                    score: ext_score,
                    discovered_epoch: self.epoch,
                    discovered_iteration: 0,
                },
            );
            if self.config().implicit_too_dense
                && self.thresholds().is_too_dense(ext_score, ext.len())
            {
                self.index.set_star(id, true);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DynDensConfig;
    use dyndens_density::AvgWeight;
    use dyndens_graph::EdgeUpdate;

    fn update(a: u32, b: u32, delta: f64) -> EdgeUpdate {
        EdgeUpdate::new(VertexId(a), VertexId(b), delta)
    }

    fn sample_engine(threshold: f64) -> DynDens<AvgWeight> {
        let config = DynDensConfig::new(threshold, 4).with_delta_it_fraction(0.3);
        let mut engine = DynDens::new(AvgWeight, config);
        let updates = [
            update(0, 1, 1.0),
            update(0, 2, 0.9),
            update(1, 2, 0.95),
            update(2, 3, 0.7),
            update(3, 4, 1.2),
            update(0, 3, 0.5),
        ];
        for u in updates {
            engine.apply_update(u);
        }
        engine
    }

    #[test]
    fn increase_shrinks_the_dense_set() {
        let mut engine = sample_engine(0.8);
        let before = engine.dense_count();
        let out_before = engine.output_dense_count();
        let events = engine.set_output_threshold(1.0);
        engine.validate().unwrap();
        assert!(engine.dense_count() <= before);
        assert!(engine.output_dense_count() <= out_before);
        assert!(events.iter().all(|e| !e.is_became()));
        assert!((engine.thresholds().output_threshold() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn decrease_matches_recompute_from_scratch() {
        let mut engine = sample_engine(1.0);
        let events = engine.set_output_threshold(0.7);
        engine.validate().unwrap();
        assert!(events.iter().all(|e| e.is_became()));

        // Reference: a fresh engine built directly at the lower threshold by
        // replaying all final edge weights (DynDensRecompute).
        let config = DynDensConfig::new(0.7, 4).with_delta_it_fraction(0.3);
        let mut reference = DynDens::new(AvgWeight, config);
        let edges: Vec<(VertexId, VertexId, f64)> = engine.graph().edges().collect();
        for (u, v, w) in edges {
            reference.apply_update(EdgeUpdate::new(u, v, w));
        }
        let mut got: Vec<VertexSet> = engine
            .output_dense_subgraphs()
            .into_iter()
            .map(|(s, _)| s)
            .collect();
        let mut want: Vec<VertexSet> = reference
            .output_dense_subgraphs()
            .into_iter()
            .map(|(s, _)| s)
            .collect();
        got.sort();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn round_trip_returns_to_original_set() {
        let mut engine = sample_engine(0.9);
        let mut original: Vec<VertexSet> = engine
            .output_dense_subgraphs()
            .into_iter()
            .map(|(s, _)| s)
            .collect();
        original.sort();
        engine.set_output_threshold(0.7);
        engine.set_output_threshold(0.9);
        engine.validate().unwrap();
        let mut after: Vec<VertexSet> = engine
            .output_dense_subgraphs()
            .into_iter()
            .map(|(s, _)| s)
            .collect();
        after.sort();
        // Lower-then-raise may leave extra *dense-but-not-output* subgraphs in
        // the index, but the reported output-dense set must be identical.
        assert_eq!(original, after);
    }

    #[test]
    fn no_op_threshold_change() {
        let mut engine = sample_engine(0.9);
        let before = engine.dense_count();
        let events = engine.set_output_threshold(0.9);
        assert!(events.is_empty());
        assert_eq!(engine.dense_count(), before);
    }

    #[test]
    fn events_report_threshold_crossings() {
        let mut engine = sample_engine(1.0);
        // {3,4} has weight 1.2 and is output-dense at T=1; {0,1} has weight
        // 1.0, also output-dense. Raising the threshold to 1.1 keeps only {3,4}.
        let events = engine.set_output_threshold(1.1);
        let lost: Vec<&VertexSet> = events.iter().map(|e| e.vertices()).collect();
        assert!(lost.contains(&&VertexSet::from_ids(&[0, 1])));
        assert!(!lost.contains(&&VertexSet::from_ids(&[3, 4])));
        // Lowering back reports {0,1} again.
        let events = engine.set_output_threshold(1.0);
        assert!(events
            .iter()
            .any(|e| e.is_became() && e.vertices() == &VertexSet::from_ids(&[0, 1])));
    }
}
