//! The DynDens engine: incremental maintenance of dense subgraphs under
//! streaming edge weight updates (Algorithms 1 and 2 of the paper).

use dyndens_density::{DensityMeasure, ThresholdFamily};
use dyndens_graph::{DynamicGraph, EdgeUpdate, VertexId, VertexSet};

use crate::config::{DeltaIt, DynDensConfig};
use crate::events::{DenseEvent, EngineStats};
use crate::heuristics::{DegreePrioritize, MaxExploreBound};
use crate::index::{NodeId, SubgraphIndex, SubgraphInfo};

/// Per-update exploration context shared by the recursive exploration
/// procedures.
struct UpdateCtx {
    a: VertexId,
    b: VertexId,
    delta: f64,
    /// `ceil(delta / delta_it)` — the theoretical bound on exploration
    /// iterations (Section 4.1.4).
    max_iterations: usize,
    /// MaxExplore bound for this update (Section 7.1); `unbounded` when the
    /// heuristic is disabled.
    bound: MaxExploreBound,
    epoch: u64,
}

/// The DynDens dense subgraph maintenance engine.
///
/// A `DynDens` instance owns the evolving entity graph, the threshold family
/// `T_n` and the dense subgraph index, and processes a stream of
/// [`EdgeUpdate`]s, reporting after each update which subgraphs became or
/// stopped being output-dense.
///
/// ```
/// use dyndens_core::{DynDens, DynDensConfig};
/// use dyndens_density::AvgWeight;
/// use dyndens_graph::{EdgeUpdate, VertexId};
///
/// let config = DynDensConfig::new(1.0, 4).with_delta_it(0.15);
/// let mut engine = DynDens::new(AvgWeight, config);
/// let events = engine.apply_update(EdgeUpdate::new(VertexId(0), VertexId(1), 1.2));
/// assert_eq!(events.len(), 1); // {0, 1} became output-dense
/// ```
#[derive(Debug, Clone)]
pub struct DynDens<D: DensityMeasure> {
    pub(crate) graph: DynamicGraph,
    pub(crate) thresholds: ThresholdFamily<D>,
    pub(crate) config: DynDensConfig,
    pub(crate) index: SubgraphIndex,
    pub(crate) epoch: u64,
    pub(crate) stats: EngineStats,
    /// `true` while WAL replay re-applies updates that were already counted
    /// before a crash: suppresses [`EngineStats`] accumulation so recovered
    /// engines do not double-count replayed work (see
    /// [`set_recovering`](Self::set_recovering)).
    pub(crate) recovering: bool,
    /// Scratch buffer reused by `canonical_order` (hot path, per update).
    pub(crate) order_scratch: Vec<([u32; SubgraphIndex::PATH_KEY_WIDTH], NodeId)>,
}

impl<D: DensityMeasure> DynDens<D> {
    /// Creates an engine over an initially empty graph whose vertex set grows
    /// lazily as updates mention new vertices.
    ///
    /// Note: the paper's data model assumes a complete graph over a fixed set
    /// of `N` vertices. With `implicit_too_dense` disabled (the explore-all
    /// fallback), extensions of a too-dense subgraph by a vertex that is
    /// introduced *later* and stays disconnected are only materialised once
    /// that vertex gains an edge; declare the full universe up front with
    /// [`with_vertex_capacity`](Self::with_vertex_capacity) if exact
    /// explicit enumeration of such corner cases matters. The default
    /// `ImplicitTooDense` representation covers them either way.
    pub fn new(measure: D, config: DynDensConfig) -> Self {
        Self::with_vertex_capacity(measure, config, 0)
    }

    /// Creates an engine over a graph with `n_vertices` pre-declared vertices
    /// (`VertexId(0) .. VertexId(n_vertices - 1)`), matching the paper's
    /// fixed-universe data model.
    pub fn with_vertex_capacity(measure: D, config: DynDensConfig, n_vertices: usize) -> Self {
        let thresholds = match config.delta_it {
            DeltaIt::Absolute(v) => {
                ThresholdFamily::new(measure, config.threshold, config.n_max, v)
            }
            DeltaIt::FractionOfMax(f) => {
                ThresholdFamily::with_delta_it_fraction(measure, config.threshold, config.n_max, f)
            }
        };
        DynDens {
            graph: DynamicGraph::with_vertices(n_vertices),
            thresholds,
            config,
            index: SubgraphIndex::new(),
            epoch: 0,
            stats: EngineStats::default(),
            recovering: false,
            order_scratch: Vec::new(),
        }
    }

    /// The evolving entity graph.
    pub fn graph(&self) -> &DynamicGraph {
        &self.graph
    }

    /// The threshold family currently in effect.
    pub fn thresholds(&self) -> &ThresholdFamily<D> {
        &self.thresholds
    }

    pub(crate) fn thresholds_mut(&mut self) -> &mut ThresholdFamily<D> {
        &mut self.thresholds
    }

    /// The engine configuration.
    pub fn config(&self) -> &DynDensConfig {
        &self.config
    }

    /// Cumulative processing statistics.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Resets the cumulative statistics counters.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Replaces the cumulative statistics wholesale.
    ///
    /// Used by shard rebalancing: a split rebuilds two child engines by
    /// filtered replay (with [`set_recovering`](Self::set_recovering) set, so
    /// the children count nothing), then hands the parent's live counters to
    /// the child that keeps the parent's worker slot. The fleet-merged work
    /// ledger stays exactly the sum of all work ever counted — no update is
    /// counted twice or dropped by a split.
    pub fn adopt_stats(&mut self, stats: EngineStats) {
        self.stats = stats;
    }

    /// Partitions the engine's maintenance state into two engines by a
    /// vertex predicate: edge `(a, b)` and subgraph `S` land in the first
    /// engine when `keep` holds for their **minimum** vertex (the same
    /// endpoint shard routing uses), in the second otherwise.
    ///
    /// This is the engine half of a shard split. Both children inherit the
    /// configuration, the *current* (possibly adjusted) threshold-family
    /// parameters, the update epoch and the parent's vertex universe; stored
    /// scores and discovery metadata are copied bit-for-bit, and `*` markers
    /// travel with their subgraph. Statistics start at zero — the caller
    /// decides how to attribute the parent's ledger (see
    /// [`adopt_stats`](Self::adopt_stats)).
    ///
    /// When no maintained subgraph spans the two sides (the partitioning
    /// invariant of `dyndens-shard`), the children's union is exactly the
    /// parent's state and each child is bit-identical to an engine that only
    /// ever saw its own slice of the update stream. A spanning subgraph is
    /// assigned by its minimum vertex — the union answer is still preserved
    /// at the split point, but the two sides' future evolution becomes the
    /// same partition approximation hash-sharding already accepts.
    pub fn partition_by(&self, mut keep: impl FnMut(VertexId) -> bool) -> (Self, Self) {
        let child = || DynDens {
            graph: DynamicGraph::with_vertices(self.graph.vertex_count()),
            thresholds: ThresholdFamily::new(
                self.thresholds.measure().clone(),
                self.thresholds.output_threshold(),
                self.config.n_max,
                self.thresholds.delta_it(),
            ),
            config: self.config.clone(),
            index: SubgraphIndex::new(),
            epoch: self.epoch,
            stats: EngineStats::default(),
            recovering: false,
            order_scratch: Vec::new(),
        };
        let (mut zero, mut one) = (child(), child());
        for (a, b, w) in self.graph.edges() {
            let side = if keep(a) { &mut zero } else { &mut one };
            side.graph.set_weight(a, b, w);
        }
        for (id, verts, info) in self.index.iter() {
            let min = verts.as_slice()[0];
            let side = if keep(min) { &mut zero } else { &mut one };
            let new_id = side.index.insert(verts.as_slice(), *info);
            if self.index.has_star(id) {
                side.index.set_star(new_id, true);
            }
        }
        (zero, one)
    }

    /// Folds another engine's maintenance state into this one — the inverse
    /// of [`partition_by`](Self::partition_by), used by a shard **merge** to
    /// coarsen two sibling engines back into one.
    ///
    /// Both engines must have the same configuration and current
    /// threshold-family parameters, and their maintained states must be
    /// edge- and subgraph-disjoint (always true for siblings produced by a
    /// split, whose slices are separated by a routing bit). Edge weights and
    /// stored subgraph scores are copied bit-for-bit, `*` markers travel
    /// with their subgraph, the vertex universe grows to the union, the
    /// epoch becomes the maximum of the two (each side's epoch counts only
    /// its own slice's updates) and the work ledgers are summed — so the
    /// merged engine answers exactly like the union of the two children,
    /// down to the score bits.
    pub fn absorb(&mut self, other: Self) {
        debug_assert_eq!(
            self.thresholds.output_threshold().to_bits(),
            other.thresholds.output_threshold().to_bits(),
            "absorb requires identical threshold families"
        );
        debug_assert_eq!(
            self.thresholds.delta_it().to_bits(),
            other.thresholds.delta_it().to_bits(),
            "absorb requires identical threshold families"
        );
        if other.graph.vertex_count() > self.graph.vertex_count() {
            self.graph
                .ensure_vertex(VertexId((other.graph.vertex_count() - 1) as u32));
        }
        for (a, b, w) in other.graph.edges() {
            debug_assert_eq!(
                self.graph.weight(a, b),
                0.0,
                "absorb requires edge-disjoint engines"
            );
            self.graph.set_weight(a, b, w);
        }
        for (id, verts, info) in other.index.iter() {
            let new_id = self.index.insert(verts.as_slice(), *info);
            if other.index.has_star(id) {
                self.index.set_star(new_id, true);
            }
        }
        self.epoch = self.epoch.max(other.epoch);
        self.stats.merge(&other.stats);
    }

    /// Marks the engine as replaying already-counted updates (WAL recovery).
    ///
    /// While the flag is set, [`apply_update_into`](Self::apply_update_into)
    /// performs the full maintenance work — the dense subgraph state after
    /// replay is identical to an uninterrupted run — but leaves every
    /// [`EngineStats`] counter untouched. Without this, replaying the WAL
    /// tail after [`restore`](Self::restore) would count the replayed
    /// updates a second time (the snapshot already carries the counters up
    /// to its sequence point), inflating the throughput ledgers merged into
    /// `BENCH_shard.json`.
    pub fn set_recovering(&mut self, recovering: bool) {
        self.recovering = recovering;
    }

    /// `true` while the engine is replaying a WAL tail (stat accumulation
    /// suppressed).
    pub fn is_recovering(&self) -> bool {
        self.recovering
    }

    /// Read access to the dense subgraph index (for white-box inspection and
    /// benchmarks).
    pub fn index(&self) -> &SubgraphIndex {
        &self.index
    }

    /// Number of dense subgraphs currently maintained (explicitly).
    pub fn dense_count(&self) -> usize {
        self.index.len()
    }

    /// All explicitly maintained dense subgraphs together with their scores.
    pub fn dense_subgraphs(&self) -> Vec<(VertexSet, f64)> {
        self.index
            .iter()
            .map(|(_, v, info)| (v, info.score))
            .collect()
    }

    /// All explicitly maintained output-dense subgraphs together with their
    /// densities, i.e. the answer to the Engagement problem at the current
    /// point of the stream (excluding subgraphs only represented implicitly
    /// through `*` markers, matching the accounting of the paper's Table 2).
    pub fn output_dense_subgraphs(&self) -> Vec<(VertexSet, f64)> {
        self.index
            .iter()
            .filter(|(_, v, info)| self.thresholds.is_output_dense(info.score, v.len()))
            .map(|(_, v, info)| {
                let density = self.thresholds.measure().density(info.score, v.len());
                (v, density)
            })
            .collect()
    }

    /// Number of explicitly maintained output-dense subgraphs.
    pub fn output_dense_count(&self) -> usize {
        self.index
            .iter()
            .filter(|(_, v, info)| self.thresholds.is_output_dense(info.score, v.len()))
            .count()
    }

    /// `true` if the subgraph is tracked as dense: either it is explicitly
    /// stored in the index, or it is covered by an `ImplicitTooDense` `*`
    /// marker (it extends a marked too-dense subgraph whose score alone
    /// already clears the dense bound at the queried cardinality).
    pub fn is_tracked_dense(&self, set: &VertexSet) -> bool {
        if set.len() < 2 || set.len() > self.thresholds.n_max() {
            return false;
        }
        if self.index.find(set.as_slice()).is_some() {
            return true;
        }
        self.covered_by_star(set)
    }

    /// `true` if the subgraph is covered by a `*` marker (see
    /// [`is_tracked_dense`](Self::is_tracked_dense)).
    pub fn covered_by_star(&self, set: &VertexSet) -> bool {
        for base in self.index.star_bases_within(set.as_slice()) {
            if self.index.cardinality(base) < set.len()
                && self.thresholds.is_dense(self.index.score(base), set.len())
            {
                return true;
            }
        }
        false
    }

    /// Processes a single edge weight update and returns the changes to the
    /// reported set of output-dense subgraphs.
    pub fn apply_update(&mut self, update: EdgeUpdate) -> Vec<DenseEvent> {
        let mut events = Vec::new();
        self.apply_update_into(update, &mut events);
        events
    }

    /// Processes a single update, appending events to `events` (avoids a fresh
    /// allocation per update in hot loops).
    pub fn apply_update_into(&mut self, update: EdgeUpdate, events: &mut Vec<DenseEvent>) {
        if self.recovering {
            // Replayed updates were already counted before the crash; redo
            // the maintenance work but discard the counter deltas.
            let saved = self.stats.clone();
            self.apply_update_inner(update, events);
            self.stats = saved;
        } else {
            self.apply_update_inner(update, events);
        }
    }

    fn apply_update_inner(&mut self, update: EdgeUpdate, events: &mut Vec<DenseEvent>) {
        self.stats.updates += 1;
        if update.delta == 0.0 {
            return;
        }
        self.epoch += 1;
        self.graph.apply_update(&update);
        if update.delta < 0.0 {
            self.stats.negative_updates += 1;
            self.process_negative(update, events);
        } else {
            self.stats.positive_updates += 1;
            self.process_positive(update, events);
        }
    }

    /// Convenience: processes a sequence of updates, returning all events in
    /// order.
    pub fn apply_updates<I: IntoIterator<Item = EdgeUpdate>>(
        &mut self,
        updates: I,
    ) -> Vec<DenseEvent> {
        let mut events = Vec::new();
        for u in updates {
            self.apply_update_into(u, &mut events);
        }
        events
    }

    // ------------------------------------------------------------------
    // Negative updates (Algorithm 1, lines 1-3)
    // ------------------------------------------------------------------

    fn process_negative(&mut self, update: EdgeUpdate, events: &mut Vec<DenseEvent>) {
        let (a, b, delta) = (update.a, update.b, update.delta);
        // Only subgraphs containing both endpoints see their score change.
        // Processed in canonical (vertex set) order, not index-arena order:
        // arena order depends on the full insert/remove history, which a
        // snapshot-restored engine does not share, and the coverage repairs
        // below are order-sensitive at the floating-point-bit level. The
        // canonical order makes replay-after-restore bit-identical.
        let affected = self.canonical_order(
            self.index
                .subgraphs_containing(a)
                .into_iter()
                .filter(|&id| self.index.contains_vertex(id, b))
                .collect(),
        );
        for id in affected {
            let card = self.index.cardinality(id);
            let old_score = self.index.score(id);
            let new_score = old_score + delta;
            let was_output = self.thresholds.is_output_dense(old_score, card);
            let still_dense = self.thresholds.is_dense(new_score, card);
            let still_output = self.thresholds.is_output_dense(new_score, card);
            // ImplicitTooDense coverage repair, before any demotion or
            // eviction: a `*` marker on this subgraph covered every superset
            // of cardinality within the coverage radius determined by the
            // *old* score. The score drop shrinks that radius (possibly to
            // nothing); supersets that fall out of coverage but remain dense
            // through their own additional edges must be materialised, or the
            // index loses them.
            if self.index.has_star(id) {
                let old_radius = self.coverage_radius(old_score, card);
                let still_starred = still_dense && self.thresholds.is_too_dense(new_score, card);
                let new_radius = if still_starred {
                    self.coverage_radius(new_score, card)
                } else {
                    card
                };
                if new_radius < old_radius {
                    self.materialise_covered_band(id, new_score, new_radius, old_radius, events);
                }
                if still_dense && !still_starred {
                    self.index.set_star(id, false);
                    self.stats.star_markers_removed += 1;
                }
            }
            if still_dense {
                self.index.add_score(id, delta);
                if was_output && !still_output {
                    events.push(DenseEvent::NoLongerOutputDense {
                        vertices: self.index.vertices(id),
                        density: self.thresholds.measure().density(new_score, card),
                    });
                }
            } else {
                if was_output {
                    events.push(DenseEvent::NoLongerOutputDense {
                        vertices: self.index.vertices(id),
                        density: self.thresholds.measure().density(new_score, card),
                    });
                }
                self.index.remove(id);
                self.stats.subgraphs_evicted += 1;
            }
        }
    }

    /// Orders index nodes by their vertex sets, making iteration a function
    /// of the engine's *abstract* state (which subgraphs exist) rather than
    /// of index-arena history. Exploration and coverage repair visit these
    /// lists mutably, so the visiting order decides which arithmetic path
    /// first materialises a candidate; canonical order keeps that path — and
    /// therefore every stored score bit — reproducible across
    /// snapshot/restore.
    /// Runs on every update, hence the allocation-free
    /// [`SubgraphIndex::path_key`] fast path (stack-array keys built once
    /// per node into a reused scratch buffer, instead of a `VertexSet`
    /// allocation each).
    fn canonical_order(&mut self, mut ids: Vec<NodeId>) -> Vec<NodeId> {
        if ids.len() <= 1 {
            return ids;
        }
        let mut keyed = std::mem::take(&mut self.order_scratch);
        keyed.clear();
        for &id in &ids {
            match self.index.path_key(id) {
                Some(key) => keyed.push((key, id)),
                None => {
                    // Nmax beyond the key width: materialise the sets.
                    self.order_scratch = keyed;
                    let mut slow: Vec<(VertexSet, NodeId)> = ids
                        .into_iter()
                        .map(|id| (self.index.vertices(id), id))
                        .collect();
                    slow.sort_unstable_by(|x, y| x.0.cmp(&y.0));
                    return slow.into_iter().map(|(_, id)| id).collect();
                }
            }
        }
        keyed.sort_unstable_by_key(|x| x.0);
        ids.clear();
        ids.extend(keyed.iter().map(|&(_, id)| id));
        self.order_scratch = keyed;
        ids
    }

    /// The largest cardinality whose subgraphs are covered by a `*` marker on
    /// a subgraph of cardinality `card` with the given score: the coverage
    /// claim of [`covered_by_star`](Self::covered_by_star) is
    /// `is_dense(base_score, n)` for supersets of cardinality `n`, and the
    /// dense score bound grows with `n`, so coverage is a contiguous band
    /// `card + 1 ..= radius`.
    fn coverage_radius(&self, base_score: f64, card: usize) -> usize {
        let mut radius = card;
        for n in card + 1..=self.thresholds.n_max() {
            if self.thresholds.is_dense(base_score, n) {
                radius = n;
            } else {
                break;
            }
        }
        radius
    }

    /// Materialises the dense supersets of `base` whose cardinality lies in
    /// `new_radius + 1 ..= old_radius`: previously covered by the base's `*`
    /// marker, no longer covered after its score dropped to `new_base_score`.
    ///
    /// Candidates are enumerated by growing the base one neighbouring vertex
    /// or one disjoint edge at a time through dense intermediates (the same
    /// reachability structure the too-dense exploration relies on).
    /// Materialised subgraphs that are output-dense are reported, matching
    /// the accounting that only explicitly represented subgraphs generate
    /// events; ones that are themselves too-dense receive their own marker,
    /// which also bounds how much of the family must be expanded.
    fn materialise_covered_band(
        &mut self,
        base: NodeId,
        new_base_score: f64,
        new_radius: usize,
        old_radius: usize,
        events: &mut Vec<DenseEvent>,
    ) {
        let base_set = self.index.vertices(base);
        // The graph does not change during the expansion; collect its edge
        // list once for the disjoint-edge steps below (sorted: adjacency-map
        // iteration order is not reproducible across snapshot/restore).
        let all_edges: Vec<(VertexId, VertexId, f64)> = if base_set.len() + 2 <= old_radius {
            let mut edges: Vec<_> = self.graph.edges().collect();
            edges.sort_unstable_by_key(|&(y, z, _)| (y, z));
            edges
        } else {
            Vec::new()
        };
        let mut seen: std::collections::BTreeSet<VertexSet> = std::collections::BTreeSet::new();
        let mut stack: Vec<(VertexSet, f64)> = vec![(base_set, new_base_score)];
        while let Some((set, score)) = stack.pop() {
            let card = set.len();
            if card >= old_radius {
                // Larger supersets were never covered by the old marker.
                continue;
            }
            let gamma = self.graph.neighborhood_scores(&set);
            let mut candidates: Vec<(VertexSet, f64)> = Vec::new();
            for (&y, &gamma_y) in &gamma {
                if !set.contains(y) {
                    candidates.push((set.with(y), score + gamma_y));
                }
            }
            // Canonical expansion order (gamma is a hash map; see
            // `canonical_order`): which path first reaches a superset decides
            // the score bits it is stored with.
            candidates.sort_unstable_by(|x, y| x.0.cmp(&y.0));
            if card + 2 <= old_radius {
                for &(y, z, w) in all_edges
                    .iter()
                    .filter(|&&(y, z, _)| !set.contains(y) && !set.contains(z))
                {
                    let ext_score = w
                        + score
                        + gamma.get(&y).copied().unwrap_or(0.0)
                        + gamma.get(&z).copied().unwrap_or(0.0);
                    candidates.push((set.with(y).with(z), ext_score));
                }
            }
            for (ext, ext_score) in candidates {
                let ext_card = ext.len();
                if ext_card > old_radius
                    || !self.thresholds.is_dense(ext_score, ext_card)
                    || !seen.insert(ext.clone())
                {
                    continue;
                }
                self.stats.candidates_examined += 1;
                if ext_card > new_radius && self.index.find(ext.as_slice()).is_none() {
                    let id = self.index.insert(
                        ext.as_slice(),
                        SubgraphInfo {
                            score: ext_score,
                            discovered_epoch: self.epoch,
                            discovered_iteration: 0,
                        },
                    );
                    self.stats.subgraphs_inserted += 1;
                    if self.thresholds.is_output_dense(ext_score, ext_card) {
                        events.push(DenseEvent::BecameOutputDense {
                            vertices: ext.clone(),
                            density: self.thresholds.measure().density(ext_score, ext_card),
                        });
                    }
                    if self.config.implicit_too_dense
                        && self.thresholds.is_too_dense(ext_score, ext_card)
                    {
                        self.index.set_star(id, true);
                        self.stats.star_markers_created += 1;
                        // Its own marker now covers its supersets up to its
                        // coverage radius; anything beyond old_radius was
                        // never covered by the original marker.
                        if self.coverage_radius(ext_score, ext_card) >= old_radius {
                            continue;
                        }
                    }
                }
                stack.push((ext, ext_score));
            }
        }
    }

    // ------------------------------------------------------------------
    // Positive updates (Algorithm 1, lines 4-11; Algorithm 2)
    // ------------------------------------------------------------------

    fn process_positive(&mut self, update: EdgeUpdate, events: &mut Vec<DenseEvent>) {
        let (a, b, delta) = (update.a, update.b, update.delta);
        let new_weight = self.graph.weight(a, b);

        let max_iterations = self.thresholds.exploration_iterations(delta);
        // The MaxExplore inequalities (Section 7.1) carry a `delta_it` slack
        // and are derived in the single-iteration regime `delta <= delta_it`;
        // a large update processed in several exploration iterations can
        // create newly-dense subgraphs beyond the bound (observed on
        // recompute-style replays where each edge arrives as one full-weight
        // update). Fall back to the exact unbounded exploration there.
        let bound = if self.config.max_explore && max_iterations <= 1 {
            MaxExploreBound::compute(&self.graph, &self.thresholds, a, b, new_weight)
        } else {
            MaxExploreBound::unbounded(self.thresholds.n_max())
        };
        let ctx = UpdateCtx {
            a,
            b,
            delta,
            max_iterations,
            bound,
            epoch: self.epoch,
        };

        // Snapshots: subgraphs that were dense before this update and contain a
        // and/or b, and the * markers present before this update. Both are
        // visited in canonical (vertex set) order — exploration discoveries
        // depend on which base reaches a candidate first, so arena order
        // would make the resulting score bits depend on index history and
        // break snapshot/replay bit-equivalence.
        let affected = self.canonical_order(self.index.subgraphs_containing_either(a, b));
        let stars = if self.config.implicit_too_dense {
            self.canonical_order(self.index.star_bases())
        } else {
            Vec::new()
        };

        // Base case of Algorithm 1, line 4: the edge {a, b} itself, if it is
        // newly-dense and not already maintained.
        if self.index.find(&[a.min(b), a.max(b)]).is_none()
            && self.thresholds.is_dense(new_weight, 2)
        {
            let pair = VertexSet::pair(a, b);
            self.insert_newly_dense(&pair, new_weight, 0, &ctx, events);
            self.explore(&pair, new_weight, 1, true, &ctx, events);
        }

        for id in affected {
            if !self.index.has_info(id) {
                // May have been restructured by earlier work in this update.
                continue;
            }
            let contains_a = self.index.contains_vertex(id, a);
            let contains_b = self.index.contains_vertex(id, b);
            let card = self.index.cardinality(id);
            if contains_a && contains_b {
                // Algorithm 1, lines 10-11.
                let old_score = self.index.score(id);
                let new_score = self.index.add_score(id, delta);
                if !self.thresholds.is_output_dense(old_score, card)
                    && self.thresholds.is_output_dense(new_score, card)
                {
                    events.push(DenseEvent::BecameOutputDense {
                        vertices: self.index.vertices(id),
                        density: self.thresholds.measure().density(new_score, card),
                    });
                }
                let verts = self.index.vertices(id);
                self.explore(&verts, new_score, 1, true, &ctx, events);
            } else {
                // Algorithm 1, lines 5-8: cheap exploration.
                self.cheap_explore(id, contains_a, &ctx, events);
            }
        }

        // ImplicitTooDense star bases: their covered extensions may need to be
        // grown around, and two-vertex extensions by {a, b} may be newly-dense
        // (Section 3.2.3).
        for base in stars {
            if !self.index.has_info(base) || !self.index.has_star(base) {
                continue;
            }
            self.process_star_base(base, &ctx, events);
        }
    }

    /// Cheap exploration (Algorithm 1 line 6): augments a dense subgraph
    /// containing exactly one of the updated endpoints with the other one.
    fn cheap_explore(
        &mut self,
        id: NodeId,
        contains_a: bool,
        ctx: &UpdateCtx,
        events: &mut Vec<DenseEvent>,
    ) {
        let card = self.index.cardinality(id);
        let score = self.index.score(id);
        if card + 1 > self.thresholds.n_max() {
            return;
        }
        // A subgraph that was too-dense before the update normally need not be
        // cheap-explored: its extension by the other endpoint was already
        // dense before the update (its score is unchanged by this update since
        // it contains only one endpoint, so "before" == "now"), and is tracked
        // — by the `*` marker in the implicit representation, or explicitly by
        // explore-all. The exception is the explicit representation with lazy
        // vertex creation: if `other` did not exist yet when the base became
        // too-dense, explore-all could not materialise the extension, so
        // materialise (and explore around) it now that `other` is connected.
        if self.thresholds.is_too_dense(score, card) {
            if !self.config.implicit_too_dense {
                let other = if contains_a { ctx.b } else { ctx.a };
                let verts = self.index.vertices(id);
                let ext = verts.with(other);
                if self.index.find(ext.as_slice()).is_none() {
                    self.stats.candidates_examined += 1;
                    let ext_score = score + self.graph.degree_into(other, &verts);
                    if self.note_candidate(&ext, ext_score, 1, ctx, events) {
                        self.explore(&ext, ext_score, 2, true, ctx, events);
                    }
                }
            }
            return;
        }
        if self.config.max_explore && !ctx.bound.should_cheap_explore(contains_a, card) {
            self.stats.max_explore_skips += 1;
            return;
        }
        let other = if contains_a { ctx.b } else { ctx.a };
        let verts = self.index.vertices(id);
        let other_degree = self.graph.degree_into(other, &verts);
        // The updated edge connects `other` to the endpoint inside `C`, so its
        // pre-update degree into `C` is lower by exactly delta.
        if self.config.degree_prioritize
            && DegreePrioritize::skip_cheap_exploration(card, other_degree - ctx.delta, score)
        {
            self.stats.degree_prioritize_skips += 1;
            return;
        }
        self.stats.cheap_explorations += 1;
        self.stats.candidates_examined += 1;
        let ext_score = score + other_degree;
        let ext_card = card + 1;
        // Newly-dense check: dense now, and not dense before the update (the
        // extension contains both endpoints, so its pre-update score is lower
        // by exactly delta).
        if self.thresholds.is_dense(ext_score, ext_card)
            && !self.thresholds.is_dense(ext_score - ctx.delta, ext_card)
        {
            let ext = verts.with(other);
            if self.note_candidate(&ext, ext_score, 1, ctx, events) {
                // Algorithm 1, line 8: newly-dense subgraphs found via cheap
                // exploration are explored starting from iteration 2.
                self.explore(&ext, ext_score, 2, true, ctx, events);
            }
        }
    }

    /// Handles one `*` marker during a positive update: extensions of the
    /// marked too-dense base that involve the updated endpoints may have
    /// newly-dense supergraphs that regular exploration cannot reach, because
    /// the extensions themselves are only represented implicitly.
    fn process_star_base(&mut self, base: NodeId, ctx: &UpdateCtx, events: &mut Vec<DenseEvent>) {
        let verts = self.index.vertices(base);
        let card = verts.len();
        let contains_a = verts.contains(ctx.a);
        let contains_b = verts.contains(ctx.b);
        if contains_a && contains_b {
            // The base's own score was already updated through the regular
            // iteration; all covered extensions only became denser.
            return;
        }
        let base_score = self.index.score(base);
        if !contains_a && !contains_b {
            // The two-vertex extension C ∪ {a, b} is the only covered-adjacent
            // subgraph whose score changed.
            if card + 2 > self.thresholds.n_max() {
                return;
            }
            let deg_a = self.graph.degree_into(ctx.a, &verts);
            let deg_b = self.graph.degree_into(ctx.b, &verts);
            let w_ab = self.graph.weight(ctx.a, ctx.b);
            let score = base_score + deg_a + deg_b + w_ab;
            let ext_card = card + 2;
            self.stats.candidates_examined += 1;
            if self.thresholds.is_dense(score, ext_card) {
                let ext = verts.with(ctx.a).with(ctx.b);
                let newly = !self.thresholds.is_dense(score - ctx.delta, ext_card);
                let covered = self.thresholds.is_dense(base_score, ext_card);
                if newly && !covered {
                    self.note_candidate(&ext, score, 1, ctx, events);
                    // Discovered at iteration 1, explored from iteration 2.
                    self.explore(&ext, score, 2, false, ctx, events);
                } else {
                    // Stable-dense (it was dense before the update, explicitly
                    // or through the marker): its score contains both updated
                    // endpoints, so its supergraphs may be newly-dense. It is
                    // explored like the stable-dense subgraphs of the main
                    // loop, i.e. starting at iteration 1 — starting at 2
                    // would fall outside the `ceil(delta / delta_it)` budget
                    // for single-iteration updates and lose discoveries.
                    self.explore(&ext, score, 1, false, ctx, events);
                }
            }
        } else {
            // Exactly one endpoint inside the base: the covered extension
            // C ∪ {other} contains both endpoints and acts as a stable-dense
            // subgraph that must be explored.
            if card + 1 > self.thresholds.n_max() {
                return;
            }
            let other = if contains_a { ctx.b } else { ctx.a };
            let deg_other = self.graph.degree_into(other, &verts);
            let score = base_score + deg_other;
            let ext = verts.with(other);
            self.explore(&ext, score, 1, false, ctx, events);
        }
    }

    /// The exploration procedure (Algorithm 2): tries to augment a dense
    /// subgraph (given by `verts` and its current `score`) with one more
    /// vertex, recursing on newly-dense discoveries.
    fn explore(
        &mut self,
        verts: &VertexSet,
        score: f64,
        iteration: usize,
        use_max_explore: bool,
        ctx: &UpdateCtx,
        events: &mut Vec<DenseEvent>,
    ) {
        let card = verts.len();
        if card >= self.thresholds.n_max() {
            return;
        }
        let contains_both = verts.contains(ctx.a) && verts.contains(ctx.b);
        let was_too_dense_before =
            contains_both && self.thresholds.is_too_dense(score - ctx.delta, card);
        let too_dense_now = self.thresholds.is_too_dense(score, card);
        // A subgraph that was already too-dense before the update has only
        // stable-dense one-vertex supergraphs; with the explicit explore-all
        // representation those are already in the index and will be explored
        // through the affected-subgraph loop, so nothing new can be discovered
        // here. With the implicit representation the supergraphs are only
        // covered by the * marker, and a score increase of the base can make
        // *their* supergraphs newly-dense, so we still fall through to the
        // too-dense handling below in that case.
        if was_too_dense_before && !(self.config.implicit_too_dense && too_dense_now) {
            return;
        }
        self.stats.explorations += 1;

        let ext_card = card + 1;

        if too_dense_now {
            // Every one-vertex extension is dense. Either cover the
            // disconnected ones with a * marker (ImplicitTooDense) or fall back
            // to the full explore-all expansion.
            if self.config.implicit_too_dense {
                // The subgraph may itself only exist virtually (covered by an
                // ancestor's * marker, e.g. when it is reached through
                // `process_star_base`). A * marker needs an explicit node to
                // live on, and the marker is required so that the subgraph's
                // own (possibly disconnected) extensions stay covered.
                let id = match self.index.find(verts.as_slice()) {
                    Some(id) => id,
                    None => {
                        let newly = !self.thresholds.is_dense(score - ctx.delta, card);
                        let id = self.index.insert(
                            verts.as_slice(),
                            SubgraphInfo {
                                score,
                                discovered_epoch: ctx.epoch,
                                discovered_iteration: iteration as u32,
                            },
                        );
                        self.stats.subgraphs_inserted += 1;
                        if newly && self.thresholds.is_output_dense(score, card) {
                            events.push(DenseEvent::BecameOutputDense {
                                vertices: verts.clone(),
                                density: self.thresholds.measure().density(score, card),
                            });
                        }
                        id
                    }
                };
                if !self.index.has_star(id) {
                    self.index.set_star(id, true);
                    self.stats.star_markers_created += 1;
                }
                let gamma = self.graph.neighborhood_scores(verts);
                let mut candidates: Vec<(VertexId, f64)> = gamma
                    .iter()
                    .filter(|(&y, _)| !verts.contains(y))
                    .map(|(&y, &g)| (y, g))
                    .collect();
                candidates.sort_unstable_by_key(|&(y, _)| y);
                for (y, gamma_y) in candidates {
                    self.stats.candidates_examined += 1;
                    let ext_score = score + gamma_y;
                    let ext = verts.with(y);
                    if !self.thresholds.is_dense(ext_score - ctx.delta, ext_card) {
                        if self.note_candidate(&ext, ext_score, iteration, ctx, events) {
                            self.explore(
                                &ext,
                                ext_score,
                                iteration + 1,
                                use_max_explore,
                                ctx,
                                events,
                            );
                        }
                    } else if contains_both && self.index.find(ext.as_slice()).is_none() {
                        // The extension was already dense before the update but
                        // is only represented through the * marker. Its score
                        // changed together with the base's, so its own
                        // supergraphs may be newly-dense; it is a stable-dense
                        // subgraph containing both endpoints and must be
                        // explored just like the explicit ones in the main loop.
                        self.explore(&ext, ext_score, 1, false, ctx, events);
                    }
                }
                // "Exploring C ∪ {*}": the one-vertex extensions represented by
                // the marker may in turn have newly-dense supergraphs obtained
                // by adding an edge that is not incident on the base at all
                // (Section 3.2.3). Those are exactly the subgraphs
                // C ∪ {y, z} for an edge (y, z) disjoint from C with
                // sufficiently high weight.
                if card + 2 <= self.thresholds.n_max() {
                    let mut disjoint: Vec<(VertexId, VertexId, f64)> = self
                        .graph
                        .edges()
                        .filter(|&(y, z, _)| !verts.contains(y) && !verts.contains(z))
                        .collect();
                    // Canonical order: edges() iterates hash maps, whose
                    // order is not reproducible across snapshot/restore.
                    disjoint.sort_unstable_by_key(|&(y, z, _)| (y, z));
                    for (y, z, w) in disjoint {
                        self.stats.candidates_examined += 1;
                        let ext_score = score
                            + gamma.get(&y).copied().unwrap_or(0.0)
                            + gamma.get(&z).copied().unwrap_or(0.0)
                            + w;
                        if !self.thresholds.is_dense(ext_score, card + 2) {
                            continue;
                        }
                        let ext = verts.with(y).with(z);
                        let ext_has_both = ext.contains(ctx.a) && ext.contains(ctx.b);
                        let before = ext_score - if ext_has_both { ctx.delta } else { 0.0 };
                        if self.thresholds.is_dense(before, card + 2) {
                            // Dense before the update: already tracked. If its
                            // score changed (both endpoints inside) and it is
                            // only represented implicitly, its supergraphs may
                            // nevertheless be newly-dense — explore it like
                            // the explicit stable-dense subgraphs.
                            if ext_has_both && self.index.find(ext.as_slice()).is_none() {
                                self.explore(&ext, ext_score, 1, false, ctx, events);
                            }
                            continue;
                        }
                        if self.note_candidate(&ext, ext_score, iteration, ctx, events) {
                            self.explore(
                                &ext,
                                ext_score,
                                iteration + 1,
                                use_max_explore,
                                ctx,
                                events,
                            );
                        }
                    }
                }
            } else {
                // Explore-all (Algorithm 2, lines 2-5).
                self.stats.explore_all_invocations += 1;
                let gamma = self.graph.neighborhood_scores(verts);
                for raw in 0..self.graph.vertex_count() as u32 {
                    let y = VertexId(raw);
                    if verts.contains(y) {
                        continue;
                    }
                    self.stats.candidates_examined += 1;
                    let ext_score = score + gamma.get(&y).copied().unwrap_or(0.0);
                    if !self.thresholds.is_dense(ext_score - ctx.delta, ext_card) {
                        let ext = verts.with(y);
                        if self.note_candidate(&ext, ext_score, iteration, ctx, events) {
                            self.explore(
                                &ext,
                                ext_score,
                                iteration + 1,
                                use_max_explore,
                                ctx,
                                events,
                            );
                        }
                    }
                }
            }
            return;
        }

        // Regular neighbour exploration is subject to the iteration bounds.
        if iteration > ctx.max_iterations {
            return;
        }
        if use_max_explore && self.config.max_explore && iteration > ctx.bound.iterations_for(card)
        {
            self.stats.max_explore_skips += 1;
            return;
        }

        let gamma = self.graph.neighborhood_scores(verts);
        let mut candidates: Vec<(VertexId, f64)> = gamma
            .iter()
            .filter(|(&y, _)| !verts.contains(y))
            .map(|(&y, &g)| (y, g))
            .collect();
        candidates.sort_unstable_by_key(|&(y, _)| y);
        for (y, gamma_y) in candidates {
            if self.config.degree_prioritize
                && DegreePrioritize::skip_exploration(card, gamma_y, score)
            {
                self.stats.degree_prioritize_skips += 1;
                continue;
            }
            self.stats.candidates_examined += 1;
            let ext_score = score + gamma_y;
            if !self.thresholds.is_dense(ext_score, ext_card) {
                continue;
            }
            if !self.thresholds.is_dense(ext_score - ctx.delta, ext_card) {
                let ext = verts.with(y);
                if self.note_candidate(&ext, ext_score, iteration, ctx, events) {
                    self.explore(&ext, ext_score, iteration + 1, use_max_explore, ctx, events);
                }
            } else if contains_both {
                // The extension was already dense before the update. It is
                // normally in the index — and then the affected-subgraph loop
                // explores it — but it may only be represented implicitly
                // (covered by a `*` marker below it, or lost to lazy vertex
                // creation in the explicit mode). Its score changed together
                // with this subgraph's (both endpoints inside), so its own
                // supergraphs may be newly-dense: explore it like the
                // explicit stable-dense subgraphs of the main loop.
                let ext = verts.with(y);
                if self.index.find(ext.as_slice()).is_none() {
                    self.explore(&ext, ext_score, 1, false, ctx, events);
                }
            }
        }
    }

    /// Records a newly-dense candidate in the index, reporting it if it is
    /// output-dense. Returns `true` if the caller should recurse on it
    /// (Section 3.2.2 point ii: candidates already discovered at an earlier or
    /// equal exploration iteration within this update are not re-examined).
    fn note_candidate(
        &mut self,
        verts: &VertexSet,
        score: f64,
        iteration: usize,
        ctx: &UpdateCtx,
        events: &mut Vec<DenseEvent>,
    ) -> bool {
        if let Some(existing) = self.index.find(verts.as_slice()) {
            let info = *self.index.info(existing);
            if info.discovered_epoch != ctx.epoch {
                // It was dense before the update; handled by the main loop.
                return false;
            }
            if info.discovered_iteration <= iteration as u32 {
                return false;
            }
            self.index.info_mut(existing).discovered_iteration = iteration as u32;
            return true;
        }
        let id = self.index.insert(
            verts.as_slice(),
            SubgraphInfo {
                score,
                discovered_epoch: ctx.epoch,
                discovered_iteration: iteration as u32,
            },
        );
        self.stats.subgraphs_inserted += 1;
        if self.thresholds.is_output_dense(score, verts.len()) {
            events.push(DenseEvent::BecameOutputDense {
                vertices: verts.clone(),
                density: self.thresholds.measure().density(score, verts.len()),
            });
        }
        // If the fresh subgraph is itself too-dense, its extensions must stay
        // covered even when the recursion below is cut short by the iteration
        // bounds; the marker (or the recursion into the too-dense branch of
        // `explore`) takes care of that.
        if self.config.implicit_too_dense && self.thresholds.is_too_dense(score, verts.len()) {
            self.index.set_star(id, true);
            self.stats.star_markers_created += 1;
        }
        true
    }

    /// Inserts a newly-dense subgraph discovered outside of exploration (the
    /// `{a, b}` base case).
    fn insert_newly_dense(
        &mut self,
        verts: &VertexSet,
        score: f64,
        iteration: usize,
        ctx: &UpdateCtx,
        events: &mut Vec<DenseEvent>,
    ) {
        self.note_candidate(verts, score, iteration, ctx, events);
    }

    // ------------------------------------------------------------------
    // Validation helpers (used heavily by the test suites)
    // ------------------------------------------------------------------

    /// Exhaustively checks internal consistency: index structure invariants,
    /// stored scores matching the graph, every stored subgraph being dense,
    /// `*` markers sitting only on too-dense subgraphs, and cardinalities
    /// within bounds. Intended for tests and debugging; cost is proportional
    /// to the index size times `Nmax^2`.
    pub fn validate(&self) -> Result<(), String> {
        self.index.check_invariants()?;
        for (id, verts, info) in self.index.iter() {
            let card = verts.len();
            if !(2..=self.thresholds.n_max()).contains(&card) {
                return Err(format!("subgraph {verts} has out-of-range cardinality"));
            }
            let actual = self.graph.score(&verts);
            if (actual - info.score).abs() > 1e-6 {
                return Err(format!(
                    "stored score {} of {verts} disagrees with graph score {actual}",
                    info.score
                ));
            }
            if !self.thresholds.is_dense(info.score, card) {
                return Err(format!("stored subgraph {verts} is not dense"));
            }
            if self.index.has_star(id) && !self.thresholds.is_too_dense(info.score, card) {
                return Err(format!("* marker on {verts}, which is not too-dense"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyndens_density::AvgWeight;

    fn update(a: u32, b: u32, delta: f64) -> EdgeUpdate {
        EdgeUpdate::new(VertexId(a), VertexId(b), delta)
    }

    /// Builds the entity graph of the paper's execution example (Figure 2(a))
    /// just before the update of edge (1, 2): vertices are renumbered to
    /// 0-based (paper vertex i = our vertex i-1).
    ///
    /// Paper weights: w(1,3)=w(1,4)=w(3,4)=w(2,4)=1.0, w(2,3)=1.1, w(1,2)=0.8,
    /// w(1,5)=0.8 (vertex 5 hangs off vertex 1 with a light edge).
    fn execution_example_engine() -> DynDens<AvgWeight> {
        // The paper uses T = 1, Nmax = 4 and thresholds T_2 = 0.9,
        // T_3 = 0.975, which correspond to delta_it = 0.075 under our
        // AvgWeight parameterisation (see dyndens-density's threshold tests).
        let config = DynDensConfig::plain(1.0, 4).with_delta_it(0.075);
        let mut engine = DynDens::new(AvgWeight, config);
        for u in [
            update(0, 2, 1.0),
            update(0, 3, 1.0),
            update(2, 3, 1.0),
            update(1, 3, 1.0),
            update(1, 2, 1.1),
            update(0, 1, 0.8),
            update(0, 4, 0.8),
        ] {
            engine.apply_update(u);
        }
        engine
    }

    fn dense_sets(engine: &DynDens<AvgWeight>) -> Vec<VertexSet> {
        let mut v: Vec<VertexSet> = engine
            .dense_subgraphs()
            .into_iter()
            .map(|(s, _)| s)
            .collect();
        v.sort();
        v
    }

    #[test]
    fn execution_example_initial_state() {
        let engine = execution_example_engine();
        engine.validate().unwrap();
        // Figure 2(b), top half (0-based vertex ids): {0,2}, {0,3}, {1,2},
        // {1,3}, {2,3}, {0,2,3}, {1,2,3} are dense; {0,1} (weight 0.8 < 0.9)
        // and {0,4} are not.
        let dense = dense_sets(&engine);
        let expected: Vec<VertexSet> = [
            vec![0u32, 2],
            vec![0, 3],
            vec![1, 2],
            vec![1, 3],
            vec![2, 3],
            vec![0, 2, 3],
            vec![1, 2, 3],
        ]
        .iter()
        .map(|ids| VertexSet::from_ids(ids))
        .collect();
        let mut expected = expected;
        expected.sort();
        assert_eq!(dense, expected);
        assert_eq!(engine.output_dense_count(), 7);
    }

    #[test]
    fn execution_example_update() {
        let mut engine = execution_example_engine();
        // The update of the paper: edge (1,2) [our (0,1)] goes from 0.8 to 0.95.
        let events = engine.apply_update(update(0, 1, 0.15));
        engine.validate().unwrap();

        let dense = dense_sets(&engine);
        let expected: Vec<VertexSet> = [
            vec![0u32, 2],
            vec![0, 3],
            vec![1, 2],
            vec![1, 3],
            vec![2, 3],
            vec![0, 2, 3],
            vec![1, 2, 3],
            // newly-dense after the update (bottom half of Figure 2(b)):
            vec![0, 1],
            vec![0, 1, 2],
            vec![0, 1, 3],
            vec![0, 1, 2, 3],
        ]
        .iter()
        .map(|ids| VertexSet::from_ids(ids))
        .collect();
        let mut expected = expected;
        expected.sort();
        assert_eq!(dense, expected);

        // {0,1,2} (paper {1,2,3}, density 1.016) and {0,1,2,3} (density 1.0083)
        // become output-dense; {0,1} (0.95) and {0,1,3} (0.983) do not.
        let mut became: Vec<VertexSet> = events
            .iter()
            .filter(|e| e.is_became())
            .map(|e| e.vertices().clone())
            .collect();
        became.sort();
        assert_eq!(
            became,
            vec![
                VertexSet::from_ids(&[0, 1, 2]),
                VertexSet::from_ids(&[0, 1, 2, 3])
            ]
        );
        assert!(events.iter().all(|e| e.is_became()));
    }

    #[test]
    fn negative_update_evicts_and_reports() {
        let mut engine = execution_example_engine();
        engine.apply_update(update(0, 1, 0.15));
        // Now pull the same edge back down hard: {0,1}, {0,1,2}, {0,1,3} and
        // {0,1,2,3} lose density.
        let events = engine.apply_update(update(0, 1, -0.8));
        engine.validate().unwrap();
        let gone: Vec<VertexSet> = events
            .iter()
            .filter(|e| !e.is_became())
            .map(|e| e.vertices().clone())
            .collect();
        // The two previously output-dense subgraphs containing edge (0,1) are
        // reported as lost.
        assert!(gone.contains(&VertexSet::from_ids(&[0, 1, 2])));
        assert!(gone.contains(&VertexSet::from_ids(&[0, 1, 2, 3])));
        // And the index no longer stores subgraphs containing the edge (0,1).
        for (set, _) in engine.dense_subgraphs() {
            assert!(
                !(set.contains(VertexId(0)) && set.contains(VertexId(1))),
                "{set} should have been evicted"
            );
        }
    }

    #[test]
    fn zero_delta_is_a_no_op() {
        let mut engine = execution_example_engine();
        let before = dense_sets(&engine);
        let events = engine.apply_update(update(0, 1, 0.0));
        assert!(events.is_empty());
        assert_eq!(dense_sets(&engine), before);
    }

    #[test]
    fn single_heavy_edge_is_reported() {
        let config = DynDensConfig::new(1.0, 4).with_delta_it(0.15);
        let mut engine = DynDens::new(AvgWeight, config);
        let events = engine.apply_update(update(3, 9, 1.5));
        assert_eq!(events.len(), 1);
        assert!(events[0].is_became());
        assert_eq!(events[0].vertices(), &VertexSet::from_ids(&[3, 9]));
        assert_eq!(engine.dense_count(), 1);
        assert_eq!(engine.output_dense_count(), 1);
        engine.validate().unwrap();
    }

    #[test]
    fn growing_clique_is_tracked_at_all_cardinalities() {
        let config = DynDensConfig::new(1.0, 5).with_delta_it_fraction(0.5);
        let mut engine = DynDens::new(AvgWeight, config);
        // Build a 5-clique with all weights 1.2, one edge at a time.
        let mut events = Vec::new();
        for i in 0..5u32 {
            for j in (i + 1)..5u32 {
                engine.apply_update_into(update(i, j, 1.2), &mut events);
            }
        }
        engine.validate().unwrap();
        // Every subset of cardinality 2..=5 is output-dense: C(5,2)+C(5,3)+C(5,4)+C(5,5) = 10+10+5+1 = 26.
        assert_eq!(engine.output_dense_count(), 26);
        assert!(engine.is_tracked_dense(&VertexSet::from_ids(&[0, 1, 2, 3, 4])));
        assert!(engine.is_tracked_dense(&VertexSet::from_ids(&[1, 3])));
        assert!(!engine.is_tracked_dense(&VertexSet::from_ids(&[0, 1, 2, 3, 4, 5])));
    }

    #[test]
    fn implicit_too_dense_covers_disconnected_extensions() {
        // One extremely heavy edge makes {0,1} too-dense: adding any third
        // vertex (even a disconnected one) keeps it dense. With the implicit
        // representation the index stays small but coverage queries succeed.
        let config = DynDensConfig::new(1.0, 4).with_delta_it(0.15);
        let mut engine = DynDens::new(AvgWeight, config);
        engine.apply_update(update(0, 1, 10.0));
        // Materialise a few unrelated vertices so they exist in the graph.
        engine.apply_update(update(5, 6, 0.2));
        engine.validate().unwrap();
        assert!(engine.index().star_count() >= 1);
        assert!(engine.is_tracked_dense(&VertexSet::from_ids(&[0, 1, 5])));
        assert!(engine.is_tracked_dense(&VertexSet::from_ids(&[0, 1, 6])));
        assert!(engine.covered_by_star(&VertexSet::from_ids(&[0, 1, 5, 6])));
        // The explicit index does not enumerate all of those.
        assert!(engine.dense_count() < 5);
    }

    #[test]
    fn explore_all_mode_matches_implicit_coverage() {
        let implicit_cfg = DynDensConfig::new(1.0, 4).with_delta_it(0.15);
        let explicit_cfg = implicit_cfg.clone().with_implicit_too_dense(false);
        let updates = vec![
            update(0, 1, 10.0),
            update(5, 6, 0.2),
            update(2, 3, 1.3),
            update(1, 2, 0.8),
        ];
        let mut imp = DynDens::new(AvgWeight, implicit_cfg);
        let mut exp = DynDens::new(AvgWeight, explicit_cfg);
        for u in &updates {
            imp.apply_update(*u);
            exp.apply_update(*u);
        }
        imp.validate().unwrap();
        exp.validate().unwrap();
        // Every subgraph explicitly stored by the explore-all variant must be
        // tracked (explicitly or implicitly) by the implicit variant.
        for (set, _) in exp.dense_subgraphs() {
            assert!(imp.is_tracked_dense(&set), "implicit variant lost {set}");
        }
        assert!(exp.stats().explore_all_invocations > 0);
        assert!(imp.stats().star_markers_created > 0);
    }

    #[test]
    fn star_coverage_shrink_and_demotion_keep_tracking_exact() {
        // T = 1, Nmax = 4, delta_it = 0.15: dense score bounds are 0.8 (card
        // 2), 2.85 (card 3) and 6.0 (card 4).
        let config = DynDensConfig::new(1.0, 4).with_delta_it(0.15);
        let mut engine = DynDens::with_vertex_capacity(AvgWeight, config, 6);
        engine.apply_update(update(0, 1, 6.5)); // too-dense pair: covers cards 3 and 4
        engine.apply_update(update(2, 3, 1.2)); // separate output-dense pair
        engine.validate().unwrap();
        // Zero-contribution (disconnected) and cross-component supersets are
        // covered by the marker.
        assert!(engine.is_tracked_dense(&VertexSet::from_ids(&[0, 1, 4])));
        assert!(engine.is_tracked_dense(&VertexSet::from_ids(&[0, 1, 2, 3])));

        // Radius shrink (6.5 -> 5.0): card-4 coverage is lost. {0,1,2,3}
        // stays dense through its own (2,3) edge (5.0 + 1.2 >= 6.0) and must
        // be materialised; zero-contribution card-4 supersets score exactly
        // 5.0 < 6.0, i.e. they stop being dense the moment they stop being
        // covered — nothing is lost.
        engine.apply_update(update(0, 1, -1.5));
        engine.validate().unwrap();
        assert!(engine.index().star_count() >= 1, "base must stay too-dense");
        assert!(
            engine
                .dense_subgraphs()
                .iter()
                .any(|(s, _)| s == &VertexSet::from_ids(&[0, 1, 2, 3])),
            "weighted ext must be explicit after falling out of coverage"
        );
        assert!(engine.is_tracked_dense(&VertexSet::from_ids(&[0, 1, 4]))); // card-3 coverage retained

        // Full demotion (5.0 -> 2.0 < 2.85): the marker goes away, and every
        // previously covered superset is either materialised or no longer
        // dense.
        engine.apply_update(update(0, 1, -3.0));
        engine.validate().unwrap();
        assert_eq!(engine.index().star_count(), 0);
        assert!(!engine.is_tracked_dense(&VertexSet::from_ids(&[0, 1, 4])));
        assert!(engine.is_tracked_dense(&VertexSet::from_ids(&[0, 1])));
        assert!(engine.is_tracked_dense(&VertexSet::from_ids(&[2, 3])));
        // {0,1,2,3} lost density (2.0 + 1.2 < 6.0) and must be evicted.
        assert!(!engine.is_tracked_dense(&VertexSet::from_ids(&[0, 1, 2, 3])));
    }

    #[test]
    fn partition_then_absorb_round_trips_the_answer() {
        // Two communities separated by the parity of the vertex id, so a
        // `keep = even` partition is subgraph-disjoint.
        let config = DynDensConfig::new(1.0, 4).with_delta_it(0.15);
        let mut engine = DynDens::new(AvgWeight, config);
        for (a, b) in [(0, 2), (0, 4), (2, 4), (1, 3), (1, 5), (3, 5)] {
            engine.apply_update(update(a, b, 1.25));
        }
        engine.apply_update(update(0, 2, 10.0)); // a `*` marker on one side
        engine.validate().unwrap();
        let mut want: Vec<(VertexSet, u64)> = engine
            .dense_subgraphs()
            .into_iter()
            .map(|(s, d)| (s, d.to_bits()))
            .collect();
        want.sort_by(|a, b| a.0.cmp(&b.0));
        let stars = engine.index().star_count();
        let want_stats = engine.stats().clone();

        let (mut zero, one) = engine.partition_by(|v| v.index() % 2 == 0);
        zero.adopt_stats(want_stats.clone());
        zero.absorb(one);
        zero.validate().unwrap();
        let mut got: Vec<(VertexSet, u64)> = zero
            .dense_subgraphs()
            .into_iter()
            .map(|(s, d)| (s, d.to_bits()))
            .collect();
        got.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(got, want);
        assert_eq!(zero.index().star_count(), stars);
        assert_eq!(zero.stats(), &want_stats);

        // The merged engine keeps evolving exactly like the original.
        for u in [update(0, 1, 1.5), update(2, 3, 0.75)] {
            engine.apply_update(u);
            zero.apply_update(u);
        }
        let left: Vec<(VertexSet, u64)> = {
            let mut v: Vec<_> = engine
                .dense_subgraphs()
                .into_iter()
                .map(|(s, d)| (s, d.to_bits()))
                .collect();
            v.sort_by(|a, b| a.0.cmp(&b.0));
            v
        };
        let right: Vec<(VertexSet, u64)> = {
            let mut v: Vec<_> = zero
                .dense_subgraphs()
                .into_iter()
                .map(|(s, d)| (s, d.to_bits()))
                .collect();
            v.sort_by(|a, b| a.0.cmp(&b.0));
            v
        };
        assert_eq!(left, right);
    }

    #[test]
    fn stats_are_accumulated() {
        let mut engine = execution_example_engine();
        engine.apply_update(update(0, 1, 0.15));
        let s = engine.stats();
        assert_eq!(s.updates, 8);
        assert_eq!(s.positive_updates, 8);
        assert!(s.explorations > 0);
        assert!(s.cheap_explorations > 0);
        assert!(s.subgraphs_inserted >= 11);
        engine.reset_stats();
        assert_eq!(engine.stats().updates, 0);
    }
}
