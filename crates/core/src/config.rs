//! Engine configuration.

/// How the exploration granularity `delta_it` is specified.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeltaIt {
    /// An absolute value, which must lie in the validity interval
    /// `(0, delta_it_max]` for the chosen measure, threshold and `Nmax`.
    Absolute(f64),
    /// A fraction of the maximum admissible value (the parameterisation used
    /// throughout the paper's evaluation, e.g. "1% of its maximum value").
    FractionOfMax(f64),
}

impl Default for DeltaIt {
    fn default() -> Self {
        // A middle-of-the-road default; Section 5.1 observes good performance
        // over a wide range of values.
        DeltaIt::FractionOfMax(0.25)
    }
}

/// Configuration of a [`DynDens`](crate::DynDens) engine.
///
/// * `threshold` — the output density threshold `T`.
/// * `n_max` — the maximum cardinality `Nmax` of subgraphs of interest
///   (stories presented to a user are small, e.g. 4–10 entities).
/// * `delta_it` — the exploration granularity, trading index size for
///   exploration work (Section 4.1.4).
/// * `implicit_too_dense` — enable the `ImplicitTooDense` index optimisation
///   (Section 3.2.3); when disabled, too-dense subgraphs are expanded with
///   every vertex of the graph (`explore-all`).
/// * `max_explore` / `degree_prioritize` — the two pruning heuristics of
///   Section 7.
#[derive(Debug, Clone, PartialEq)]
pub struct DynDensConfig {
    /// Output density threshold `T`.
    pub threshold: f64,
    /// Maximum cardinality `Nmax` of maintained subgraphs.
    pub n_max: usize,
    /// Exploration granularity `delta_it`.
    pub delta_it: DeltaIt,
    /// Enable the `ImplicitTooDense` optimisation (default: `true`).
    pub implicit_too_dense: bool,
    /// Enable the MaxExplore heuristic (default: `true`).
    pub max_explore: bool,
    /// Enable the DegreePrioritize heuristic (default: `true`).
    pub degree_prioritize: bool,
}

impl DynDensConfig {
    /// Creates a configuration with the given threshold and maximum
    /// cardinality, with all optimisations enabled and the default
    /// `delta_it` fraction.
    pub fn new(threshold: f64, n_max: usize) -> Self {
        DynDensConfig {
            threshold,
            n_max,
            delta_it: DeltaIt::default(),
            implicit_too_dense: true,
            max_explore: true,
            degree_prioritize: true,
        }
    }

    /// Sets `delta_it` to an absolute value.
    pub fn with_delta_it(mut self, delta_it: f64) -> Self {
        self.delta_it = DeltaIt::Absolute(delta_it);
        self
    }

    /// Sets `delta_it` as a fraction of its maximum admissible value.
    pub fn with_delta_it_fraction(mut self, fraction: f64) -> Self {
        self.delta_it = DeltaIt::FractionOfMax(fraction);
        self
    }

    /// Enables or disables the `ImplicitTooDense` optimisation.
    pub fn with_implicit_too_dense(mut self, enabled: bool) -> Self {
        self.implicit_too_dense = enabled;
        self
    }

    /// Enables or disables the MaxExplore heuristic.
    pub fn with_max_explore(mut self, enabled: bool) -> Self {
        self.max_explore = enabled;
        self
    }

    /// Enables or disables the DegreePrioritize heuristic.
    pub fn with_degree_prioritize(mut self, enabled: bool) -> Self {
        self.degree_prioritize = enabled;
        self
    }

    /// Disables every optional optimisation and heuristic; useful as a
    /// baseline in ablation studies and as a reference in correctness tests.
    pub fn plain(threshold: f64, n_max: usize) -> Self {
        Self::new(threshold, n_max)
            .with_implicit_too_dense(false)
            .with_max_explore(false)
            .with_degree_prioritize(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_round_trip() {
        let c = DynDensConfig::new(0.8, 6)
            .with_delta_it(0.05)
            .with_implicit_too_dense(false)
            .with_max_explore(false)
            .with_degree_prioritize(false);
        assert_eq!(c.threshold, 0.8);
        assert_eq!(c.n_max, 6);
        assert_eq!(c.delta_it, DeltaIt::Absolute(0.05));
        assert!(!c.implicit_too_dense);
        assert!(!c.max_explore);
        assert!(!c.degree_prioritize);
    }

    #[test]
    fn defaults_enable_optimisations() {
        let c = DynDensConfig::new(1.0, 5);
        assert!(c.implicit_too_dense);
        assert!(c.max_explore);
        assert!(c.degree_prioritize);
        assert_eq!(c.delta_it, DeltaIt::FractionOfMax(0.25));
    }

    #[test]
    fn plain_disables_everything() {
        let c = DynDensConfig::plain(1.0, 5).with_delta_it_fraction(0.5);
        assert!(!c.implicit_too_dense && !c.max_explore && !c.degree_prioritize);
        assert_eq!(c.delta_it, DeltaIt::FractionOfMax(0.5));
    }
}
