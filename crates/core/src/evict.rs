//! Decay-driven state eviction: reclaiming fully-decayed edges and the
//! vertices they orphan.
//!
//! On an unbounded stream with exponential decay (the paper's emerging-story
//! mode), old associations fade towards zero but the engine state that
//! remembers them — adjacency entries, subgraph index nodes, `*` markers,
//! allocator capacity — never goes away on its own. [`DynDens::evict_below`]
//! closes that loop: it cancels every edge whose weight has decayed to (or
//! below) a caller-chosen floor, driving the removal through the engine's
//! ordinary update path so the subgraph index, star markers and
//! threshold-family interactions are repaired by exactly the same code a
//! genuine negative update would run. The result is **bit-compatible** with
//! an engine that received the identical cancelling updates from the stream
//! itself — snapshot-byte-identical, in fact — which is what makes eviction
//! safe to run inside a WAL-logged shard worker (crash replay reproduces it
//! exactly; see `dyndens-shard`).
//!
//! Eviction is the engine half of a memory-bounded forever-run; the other
//! halves (persistence compaction and shard merge) live in `dyndens-shard`,
//! and the operator-facing story is told in `docs/RETENTION.md`.

use dyndens_density::DensityMeasure;
use dyndens_graph::EdgeUpdate;

use crate::engine::DynDens;
use crate::events::DenseEvent;

/// What one [`DynDens::evict_below`] pass reclaimed.
///
/// This is deliberately **not** part of [`EngineStats`](crate::EngineStats):
/// the stats block is a fixed 13-counter wire format shared by the snapshot
/// codec and the serving protocol, so eviction telemetry travels out-of-band
/// in this report instead. The underlying maintenance work (negative
/// updates, index evictions, star removals) *is* counted in the ordinary
/// stats, exactly as if the cancelling updates had arrived from the stream.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EvictionReport {
    /// Edges whose weight was at or below the floor and were cancelled.
    pub edges_evicted: u64,
    /// Total weight removed from the graph by the cancelled edges.
    pub weight_evicted: f64,
    /// Vertices left with no incident edges by this pass (their adjacency
    /// capacity was returned to the allocator; the ids remain valid).
    pub vertices_orphaned: u64,
    /// Maintained subgraphs evicted from the index by this pass.
    pub subgraphs_evicted: u64,
    /// `*` markers removed by this pass.
    pub star_markers_removed: u64,
    /// [`DenseEvent`]s appended to the caller's buffer by this pass.
    pub events_emitted: u64,
}

impl<D: DensityMeasure> DynDens<D> {
    /// The cancelling updates that [`evict_below`](Self::evict_below) would
    /// apply: one `(a, b, -w)` update per edge whose current weight `w`
    /// satisfies `0 < w <= min_weight`, in canonical ascending `(a, b)`
    /// order.
    ///
    /// Exposed separately so a durability layer can write the exact victim
    /// list to its WAL *before* the eviction mutates the engine — crash
    /// replay of those records then reproduces the eviction bit-for-bit.
    pub fn edges_below(&self, min_weight: f64) -> Vec<EdgeUpdate> {
        let graph = self.graph();
        let mut victims: Vec<(dyndens_graph::VertexId, dyndens_graph::VertexId, f64)> =
            graph.edges().filter(|&(_, _, w)| w <= min_weight).collect();
        victims.sort_unstable_by_key(|&(a, b, _)| (a, b));
        victims
            .into_iter()
            .map(|(a, b, w)| EdgeUpdate::new(a, b, -w))
            .collect()
    }

    /// Evicts every edge whose weight has decayed to `min_weight` or below,
    /// together with the subgraph-index entries, `*` markers and
    /// threshold-family bookkeeping that depended on them, and releases the
    /// adjacency capacity of any vertex the pass leaves isolated.
    ///
    /// The removal runs through the engine's ordinary negative-update path
    /// ([`apply_update_into`](Self::apply_update_into)), once per victim
    /// edge in canonical `(a, b)` order, so the post-eviction state is
    /// snapshot-byte-identical to an engine that received the same
    /// cancelling updates from the stream. [`DenseEvent`]s raised by
    /// subgraphs falling out of the output-dense band are appended to
    /// `events`, exactly as they would be for streamed updates.
    ///
    /// The pass advances the epoch and the [`EngineStats`](crate::EngineStats)
    /// ledger by one update per victim edge (unless the engine is in
    /// recovery mode). Telemetry about what was reclaimed is returned in the
    /// [`EvictionReport`].
    pub fn evict_below(&mut self, min_weight: f64, events: &mut Vec<DenseEvent>) -> EvictionReport {
        let victims = self.edges_below(min_weight);
        let stats_before = self.stats().clone();
        let events_before = events.len();
        let mut report = EvictionReport {
            edges_evicted: victims.len() as u64,
            weight_evicted: victims.iter().map(|u| -u.delta).sum(),
            ..EvictionReport::default()
        };
        let isolated_before = self.graph.reclaim_isolated();
        for u in victims {
            self.apply_update_into(u, events);
        }
        let isolated_after = self.graph.reclaim_isolated();
        report.vertices_orphaned = (isolated_after - isolated_before) as u64;
        // The ledger keeps counting through an eviction (it is stream work),
        // so the per-pass deltas are recovered by differencing — except in
        // recovery mode, where the ledger is frozen by design and the deltas
        // are reported as zero.
        let stats_after = self.stats();
        report.subgraphs_evicted = stats_after.subgraphs_evicted - stats_before.subgraphs_evicted;
        report.star_markers_removed =
            stats_after.star_markers_removed - stats_before.star_markers_removed;
        report.events_emitted = (events.len() - events_before) as u64;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DynDensConfig;
    use dyndens_density::AvgWeight;
    use dyndens_graph::{VertexId, VertexSet};

    fn update(a: u32, b: u32, delta: f64) -> EdgeUpdate {
        EdgeUpdate::new(VertexId(a), VertexId(b), delta)
    }

    fn config() -> DynDensConfig {
        DynDensConfig::new(1.0, 4).with_delta_it(0.25)
    }

    /// Two strong triangles plus a mesh of weak, decayed-out edges between
    /// them; all weights dyadic so mixed-order f64 arithmetic stays exact.
    fn decayed_workload() -> Vec<EdgeUpdate> {
        let mut updates = Vec::new();
        for base in [0u32, 10u32] {
            for (a, b) in [(0, 1), (0, 2), (1, 2)] {
                updates.push(update(base + a, base + b, 1.5));
            }
        }
        // Weak remnants: below the eviction floor.
        for (a, b) in [(0, 10), (1, 11), (2, 12), (1, 20), (20, 21)] {
            updates.push(update(a, b, 0.03125));
        }
        updates
    }

    /// The comparison used throughout: identical maintained family (set and
    /// score bits), star markers, and graph edges (endpoint and weight bits).
    type MaintenanceImage = (Vec<(VertexSet, u64)>, usize, Vec<(u32, u32, u64)>);

    fn maintenance_image<D: dyndens_density::DensityMeasure>(
        engine: &DynDens<D>,
    ) -> MaintenanceImage {
        let mut family: Vec<(VertexSet, u64)> = engine
            .dense_subgraphs()
            .into_iter()
            .map(|(s, d)| (s, d.to_bits()))
            .collect();
        family.sort_by(|a, b| a.0.cmp(&b.0));
        let mut edges: Vec<(u32, u32, u64)> = engine
            .graph()
            .edges()
            .map(|(a, b, w)| (a.0, b.0, w.to_bits()))
            .collect();
        edges.sort_unstable();
        (family, engine.index().star_count(), edges)
    }

    #[test]
    fn evict_below_matches_manual_cancelling_updates_byte_for_byte() {
        let mut engine = DynDens::new(AvgWeight, config());
        let mut manual = DynDens::new(AvgWeight, config());
        for u in decayed_workload() {
            engine.apply_update(u);
            manual.apply_update(u);
        }
        let victims = engine.edges_below(0.1);
        assert_eq!(victims.len(), 5);

        let mut events = Vec::new();
        let report = engine.evict_below(0.1, &mut events);
        for u in victims {
            manual.apply_update(u);
        }

        assert_eq!(engine.snapshot(), manual.snapshot(), "not byte-identical");
        assert_eq!(report.edges_evicted, 5);
        assert!((report.weight_evicted - 5.0 * 0.03125).abs() < 1e-12);
        // Vertices 20 and 21 had only weak edges: both end up orphaned.
        assert_eq!(report.vertices_orphaned, 2);
        engine.validate().unwrap();
    }

    #[test]
    fn evicted_engine_is_bit_compatible_with_fresh_build_from_survivors() {
        let mut engine = DynDens::new(AvgWeight, config());
        for u in decayed_workload() {
            engine.apply_update(u);
        }
        engine.evict_below(0.1, &mut Vec::new());

        // A fresh engine that only ever saw the surviving edges, applied in
        // canonical order.
        let mut survivors: Vec<(VertexId, VertexId, f64)> = engine.graph().edges().collect();
        survivors.sort_unstable_by_key(|&(a, b, _)| (a, b));
        let mut fresh = DynDens::new(AvgWeight, config());
        for (a, b, w) in survivors {
            fresh.apply_update(EdgeUpdate::new(a, b, w));
        }

        assert_eq!(maintenance_image(&engine), maintenance_image(&fresh));
        engine.validate().unwrap();
        fresh.validate().unwrap();

        // And both evolve identically afterwards.
        let followups = [update(0, 10, 0.75), update(3, 4, 1.25), update(0, 3, 0.5)];
        for u in followups {
            engine.apply_update(u);
            fresh.apply_update(u);
        }
        assert_eq!(maintenance_image(&engine), maintenance_image(&fresh));
    }

    #[test]
    fn eviction_emits_no_longer_output_dense_events() {
        let mut engine = DynDens::new(AvgWeight, config());
        // One community held together by modest weights: evicting them all
        // must retract the story through the ordinary event stream.
        for (a, b) in [(0, 1), (0, 2), (1, 2)] {
            engine.apply_update(update(a, b, 1.5));
        }
        assert!(engine.output_dense_count() > 0);
        let mut events = Vec::new();
        let report = engine.evict_below(2.0, &mut events);
        assert_eq!(report.edges_evicted, 3);
        assert!(report.subgraphs_evicted > 0);
        assert!(events.iter().any(|e| !e.is_became()));
        assert_eq!(report.events_emitted, events.len() as u64);
        assert_eq!(engine.output_dense_count(), 0);
        assert_eq!(engine.graph().edge_count(), 0);
    }

    #[test]
    fn eviction_with_empty_floor_is_a_no_op() {
        let mut engine = DynDens::new(AvgWeight, config());
        for u in decayed_workload() {
            engine.apply_update(u);
        }
        let before = engine.snapshot();
        let report = engine.evict_below(0.0, &mut Vec::new());
        assert_eq!(report, EvictionReport::default());
        assert_eq!(engine.snapshot(), before);
    }

    #[test]
    fn snapshot_round_trip_after_eviction_continues_bit_exactly() {
        let mut engine = DynDens::new(AvgWeight, config());
        for u in decayed_workload() {
            engine.apply_update(u);
        }
        engine.evict_below(0.1, &mut Vec::new());
        let bytes = engine.snapshot();
        let mut restored = DynDens::restore(AvgWeight, &bytes).unwrap();
        assert_eq!(restored.snapshot(), bytes);
        for u in [update(5, 6, 1.0), update(0, 10, 0.25)] {
            engine.apply_update(u);
            restored.apply_update(u);
        }
        assert_eq!(engine.snapshot(), restored.snapshot());
    }
}
