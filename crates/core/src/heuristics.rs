//! The two pruning heuristics of Section 7: MaxExplore and DegreePrioritize.
//!
//! Both heuristics limit the work performed while processing a positive edge
//! weight update without affecting the set of dense subgraphs that is
//! eventually maintained (they are "theoretically sound" prunings, validated
//! empirically by the cross-checks against the brute-force oracle in this
//! repository's test suite).

use dyndens_density::{DensityMeasure, ThresholdFamily};
use dyndens_graph::{DynamicGraph, VertexId};

/// The MaxExplore bound of Section 7.1.
///
/// For an update of edge `(a, b)`, the bound inspects the neighbourhoods of
/// the two endpoints and derives, for each endpoint, a cardinality
/// `maxExplore_a` (resp. `maxExplore_b`) above which every newly-dense
/// subgraph is guaranteed to consist of a stable-dense subgraph containing `a`
/// (resp. `b`) augmented with the other endpoint — i.e. it is discovered by a
/// cheap exploration and regular exploration is unnecessary at those
/// cardinalities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaxExploreBound {
    /// `maxExplore_a`: newly-dense subgraphs of cardinality `>= max_explore_a`
    /// belong to `C_A` (stable-dense containing `a`, augmented with `b`).
    pub max_explore_a: usize,
    /// `maxExplore_b`, symmetrically.
    pub max_explore_b: usize,
    /// `min(maxExplore_a, maxExplore_b)`.
    pub max_explore: usize,
}

impl MaxExploreBound {
    /// A bound that never prunes anything (used when the heuristic is
    /// disabled, and for multi-iteration updates where the Section 7.1
    /// inequalities do not apply).
    ///
    /// The sentinel must be effectively infinite rather than `Nmax + 1`: the
    /// [`iterations_for`](Self::iterations_for) cut compares `iteration`
    /// against `max_explore - card`, and a large update can legitimately
    /// discover a chain of newly-dense subgraphs whose exploration depth at
    /// cardinality `c` reaches `c - 1`, which a `Nmax + 1` sentinel would
    /// prune (losing dense subgraphs).
    pub fn unbounded(_n_max: usize) -> Self {
        const NO_BOUND: usize = usize::MAX / 2;
        MaxExploreBound {
            max_explore_a: NO_BOUND,
            max_explore_b: NO_BOUND,
            max_explore: NO_BOUND,
        }
    }

    /// Computes the bound for the update of edge `(a, b)` whose post-update
    /// weight is `new_weight`, following the definitions of Section 7.1:
    ///
    /// * `best_x(0) = w + delta` (the updated edge weight), `best_x(i)` the
    ///   i-th largest weight among the edges incident to `x` excluding the
    ///   edge to the other updated endpoint, and `0` beyond the degree of `x`;
    /// * `top_x(i) = Σ_{j<=i} best_x(j)`;
    /// * `Z = 2 (g_Nmax T + delta_it / (Nmax - 1))`;
    /// * `maxExplore_a = min { i in 3..=Nmax : top_b(i-1) <= Z (i-1) - delta_it
    ///   and best_b(i) < Z }` (and symmetrically for `b`), or `Nmax + 1` when
    ///   no such `i` exists.
    pub fn compute<D: DensityMeasure>(
        graph: &DynamicGraph,
        thresholds: &ThresholdFamily<D>,
        a: VertexId,
        b: VertexId,
        new_weight: f64,
    ) -> Self {
        let n_max = thresholds.n_max();
        let z = 2.0
            * (thresholds.measure().g(n_max) * thresholds.output_threshold()
                + thresholds.delta_it() / (n_max as f64 - 1.0));
        let max_explore_a =
            Self::one_sided(graph, b, a, new_weight, z, thresholds.delta_it(), n_max);
        let max_explore_b =
            Self::one_sided(graph, a, b, new_weight, z, thresholds.delta_it(), n_max);
        MaxExploreBound {
            max_explore_a,
            max_explore_b,
            max_explore: max_explore_a.min(max_explore_b),
        }
    }

    /// Computes `maxExplore` for the endpoint whose *opposite* neighbourhood
    /// is `Γ_other` (i.e. `maxExplore_a` is derived from `Γ_b`).
    fn one_sided(
        graph: &DynamicGraph,
        other: VertexId,
        this: VertexId,
        new_weight: f64,
        z: f64,
        delta_it: f64,
        n_max: usize,
    ) -> usize {
        // best(0) = w + delta, best(i >= 1) = i-th largest weight in Γ_other \ {this}.
        let mut weights: Vec<f64> = graph
            .neighbors(other)
            .filter(|&(v, _)| v != this)
            .map(|(_, w)| w)
            .collect();
        weights.sort_unstable_by(|x, y| y.partial_cmp(x).unwrap());

        let best = |i: usize| -> f64 {
            if i == 0 {
                new_weight
            } else {
                weights.get(i - 1).copied().unwrap_or(0.0)
            }
        };

        let mut top = new_weight; // top(0)
        let mut result = n_max + 1;
        for i in 3..=n_max {
            // top(i-1) = best(0) + ... + best(i-1)
            while_top(&mut top, best, i);
            if top <= z * (i as f64 - 1.0) - delta_it && best(i) < z {
                result = i;
                break;
            }
        }
        return result;

        /// Advances `top` so that it equals `top(i - 1)`.
        fn while_top(top: &mut f64, best: impl Fn(usize) -> f64, i: usize) {
            // On entry for i = 3, `top` holds top(0); we need top(2). In general
            // we add best(i-2) and best(i-1) the first time and best(i-1) after.
            // Simpler: recompute incrementally by tracking how far we've summed.
            // To keep this helper stateless we recompute from scratch; the
            // cardinalities involved are tiny (Nmax is a small constant).
            let mut t = 0.0;
            for j in 0..i {
                t += best(j);
            }
            *top = t;
        }
    }

    /// `true` if no regular exploration is necessary at all for this update:
    /// all newly-dense subgraphs are reachable by cheap exploration plus the
    /// `{a, b}` base case.
    pub fn no_exploration_needed(&self) -> bool {
        self.max_explore == 3
    }

    /// The maximum number of exploration iterations worth performing on a
    /// subgraph of cardinality `card`, before intersecting with the
    /// `ceil(delta / delta_it)` bound.
    pub fn iterations_for(&self, card: usize) -> usize {
        self.max_explore.saturating_sub(card)
    }

    /// Decides whether the cheap exploration of a subgraph containing only
    /// `a` (when `one_sided_is_a` is `true`) or only `b` should be performed,
    /// given the subgraph's cardinality. Per Section 7.1, when
    /// `maxExplore_a >= maxExplore_b` it suffices to cheap-explore all
    /// subgraphs containing only `b` and those containing only `a` of
    /// cardinality at most `maxExplore_a - 1` (and symmetrically otherwise).
    pub fn should_cheap_explore(&self, contains_a_only: bool, card: usize) -> bool {
        if self.max_explore_a >= self.max_explore_b {
            if contains_a_only {
                card <= self.max_explore_a.saturating_sub(1)
            } else {
                true
            }
        } else if contains_a_only {
            true
        } else {
            card <= self.max_explore_b.saturating_sub(1)
        }
    }
}

/// The DegreePrioritize pruning conditions of Section 7.2.
///
/// Both conditions compare a candidate vertex's weighted degree into the
/// explored subgraph against a multiple of the subgraph's score; candidates
/// with *large* degree are skipped because the newly-dense subgraph they would
/// form is guaranteed to also be discovered by growing a different, already
/// maintained subgraph (the one missing its minimum-degree vertex).
#[derive(Debug, Clone, Copy, Default)]
pub struct DegreePrioritize;

impl DegreePrioritize {
    /// When exploring subgraph `C`, candidate `u` may be skipped if
    /// `Γ⁻_u · c > 2 / (|C| - 1) * score⁺(C)`.
    #[inline]
    pub fn skip_exploration(card: usize, candidate_degree_before: f64, score_after: f64) -> bool {
        if card < 2 {
            return false;
        }
        candidate_degree_before > 2.0 / (card as f64 - 1.0) * score_after
    }

    /// When cheap-exploring subgraph `C` (containing exactly one endpoint of
    /// the updated edge) with the other endpoint `u`, the cheap exploration
    /// may be skipped if `Γ⁻_u · c > 2 / (|C| - 1) * score⁻(C)`.
    ///
    /// The pre-update degree is the sound quantity here: if it exceeds the
    /// bound, `u` cannot be the minimum-degree vertex of the (potentially
    /// newly-dense) extension `C ∪ {u}`, so that extension also arises by
    /// growing a different, already maintained subgraph and this cheap
    /// exploration is redundant.
    #[inline]
    pub fn skip_cheap_exploration(
        card: usize,
        endpoint_degree_before: f64,
        score_before: f64,
    ) -> bool {
        if card < 2 {
            return false;
        }
        endpoint_degree_before > 2.0 / (card as f64 - 1.0) * score_before
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyndens_density::AvgWeight;
    use dyndens_graph::EdgeUpdate;

    fn graph_with_hub() -> DynamicGraph {
        let mut g = DynamicGraph::with_vertices(6);
        // b = 1 has a rich neighbourhood; a = 0 is poorly connected.
        g.apply_update(&EdgeUpdate::new(VertexId(1), VertexId(2), 0.9));
        g.apply_update(&EdgeUpdate::new(VertexId(1), VertexId(3), 0.8));
        g.apply_update(&EdgeUpdate::new(VertexId(1), VertexId(4), 0.7));
        g.apply_update(&EdgeUpdate::new(VertexId(0), VertexId(1), 0.5));
        g
    }

    #[test]
    fn unbounded_never_prunes() {
        let b = MaxExploreBound::unbounded(6);
        assert!(!b.no_exploration_needed());
        // The sentinel must not cut any reachable (cardinality, iteration)
        // combination: deep chains of newly-dense discoveries are legitimate
        // for multi-iteration updates.
        for card in 2..=64 {
            assert!(b.iterations_for(card) > 1_000_000);
        }
        assert!(b.should_cheap_explore(true, 6));
        assert!(b.should_cheap_explore(false, 6));
    }

    #[test]
    fn compute_is_symmetric_in_arguments() {
        let g = graph_with_hub();
        let fam = ThresholdFamily::with_delta_it_fraction(AvgWeight, 1.0, 5, 0.5);
        let m1 = MaxExploreBound::compute(&g, &fam, VertexId(0), VertexId(1), 0.5);
        let m2 = MaxExploreBound::compute(&g, &fam, VertexId(1), VertexId(0), 0.5);
        // maxExplore_a of (a=0, b=1) is derived from Γ_b=Γ_1, which equals
        // maxExplore_b of the swapped call.
        assert_eq!(m1.max_explore_a, m2.max_explore_b);
        assert_eq!(m1.max_explore_b, m2.max_explore_a);
        assert_eq!(m1.max_explore, m2.max_explore);
    }

    #[test]
    fn poor_neighbourhood_tightens_bound() {
        let g = graph_with_hub();
        let fam = ThresholdFamily::with_delta_it_fraction(AvgWeight, 1.0, 5, 0.5);
        // Vertex 5 is isolated: after an update of edge (0, 5) with small
        // weight, the contribution of either endpoint to any larger subgraph
        // is tiny, so the bound should collapse to the minimum (3), meaning no
        // exploration is needed.
        let m = MaxExploreBound::compute(&g, &fam, VertexId(0), VertexId(5), 0.05);
        assert_eq!(m.max_explore, 3);
        assert!(m.no_exploration_needed());
        assert_eq!(m.iterations_for(3), 0);
        assert_eq!(m.iterations_for(2), 1);
    }

    #[test]
    fn rich_neighbourhood_keeps_bound_loose() {
        let mut g = DynamicGraph::with_vertices(8);
        // Make both endpoints hubs with heavy edges.
        for v in 2..8u32 {
            g.apply_update(&EdgeUpdate::new(VertexId(0), VertexId(v), 1.0));
            g.apply_update(&EdgeUpdate::new(VertexId(1), VertexId(v), 1.0));
        }
        let fam = ThresholdFamily::with_delta_it_fraction(AvgWeight, 1.0, 6, 0.1);
        let m = MaxExploreBound::compute(&g, &fam, VertexId(0), VertexId(1), 1.0);
        // Dense neighbourhoods: the sufficient condition never triggers.
        assert_eq!(m.max_explore, 7);
        assert!(!m.no_exploration_needed());
    }

    #[test]
    fn cheap_explore_restriction_prefers_larger_bound_side() {
        let b = MaxExploreBound {
            max_explore_a: 5,
            max_explore_b: 3,
            max_explore: 3,
        };
        // maxExplore_a >= maxExplore_b: all b-only subgraphs are cheap-explored,
        // a-only subgraphs only up to cardinality 4.
        assert!(b.should_cheap_explore(false, 10));
        assert!(b.should_cheap_explore(true, 4));
        assert!(!b.should_cheap_explore(true, 5));

        let b = MaxExploreBound {
            max_explore_a: 3,
            max_explore_b: 6,
            max_explore: 3,
        };
        assert!(b.should_cheap_explore(true, 10));
        assert!(b.should_cheap_explore(false, 5));
        assert!(!b.should_cheap_explore(false, 6));
    }

    #[test]
    fn degree_prioritize_conditions() {
        // card 3, score_after 3.0: threshold is 2/(3-1) * 3 = 3.0; skip only
        // when strictly greater.
        assert!(!DegreePrioritize::skip_exploration(3, 3.0, 3.0));
        assert!(DegreePrioritize::skip_exploration(3, 3.01, 3.0));
        assert!(!DegreePrioritize::skip_exploration(1, 100.0, 0.1));

        assert!(!DegreePrioritize::skip_cheap_exploration(2, 1.9, 1.0));
        assert!(DegreePrioritize::skip_cheap_exploration(2, 2.1, 1.0));
    }
}
