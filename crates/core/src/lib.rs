//! # dyndens-core
//!
//! DynDens: incremental maintenance of dense subgraphs under streaming edge
//! weight updates, for real-time story identification (the **Engagement**
//! problem).
//!
//! Given an evolving weighted entity graph and a density threshold `T`, the
//! [`DynDens`] engine maintains, after every edge weight update, every vertex
//! subset of cardinality at most `Nmax` whose density clears `T`
//! ("output-dense" subgraphs), without recomputing anything from scratch. It
//! does so by maintaining a slightly larger family of "dense" subgraphs —
//! those clearing a cardinality-dependent threshold `T_n` — in a prefix-tree
//! index, and exploring around the subgraphs affected by each update for a
//! bounded number of iterations.
//!
//! ## Crate layout
//!
//! * [`engine`] — the update-processing algorithm (Algorithms 1 & 2).
//! * [`index`] — the prefix-tree dense subgraph index with embedded inverted
//!   lists and the `ImplicitTooDense` markers (Section 3.2).
//! * [`heuristics`] — the MaxExplore and DegreePrioritize prunings (Section 7).
//! * [`snapshot`] — versioned binary snapshot/restore of the full engine
//!   state, the substrate of the sharded subsystem's crash recovery.
//! * [`threshold_update`] — dynamic threshold adjustment (Section 6).
//! * [`evict`] — decay-driven eviction of fully-decayed edges and orphaned
//!   vertices, the engine half of memory-bounded forever-runs.
//! * [`maintenance`] — the pluggable-backend seam: the [`MaintenanceEngine`]
//!   trait the sharded subsystem is generic over, and the
//!   [`EngineBlueprint`] factories that build/restore/pin engines.
//! * [`config`], [`events`] — configuration and reporting types.
//!
//! ## Quick start
//!
//! ```
//! use dyndens_core::{DynDens, DynDensConfig};
//! use dyndens_density::AvgWeight;
//! use dyndens_graph::{EdgeUpdate, VertexId};
//!
//! // Maintain subgraphs of up to 5 entities with average edge weight >= 1.0.
//! let mut engine = DynDens::new(AvgWeight, DynDensConfig::new(1.0, 5));
//!
//! // Feed the stream of edge weight updates.
//! for (a, b, delta) in [(0, 1, 1.2), (1, 2, 1.1), (0, 2, 1.0)] {
//!     let events = engine.apply_update(EdgeUpdate::new(VertexId(a), VertexId(b), delta));
//!     for event in events {
//!         println!("{event:?}");
//!     }
//! }
//! assert!(engine.output_dense_count() >= 4); // the triangle and its edges
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod engine;
pub mod events;
pub mod evict;
pub mod heuristics;
pub mod index;
pub mod maintenance;
pub mod snapshot;
pub mod threshold_update;

pub use config::{DeltaIt, DynDensConfig};
pub use engine::DynDens;
pub use events::{DenseEvent, EngineStats};
pub use evict::EvictionReport;
pub use heuristics::{DegreePrioritize, MaxExploreBound};
pub use index::{NodeId, SubgraphIndex, SubgraphInfo};
pub use maintenance::{encode_config_params, DynDensBlueprint, EngineBlueprint, MaintenanceEngine};
pub use snapshot::{SnapshotError, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};

// Re-export the substrate crates so downstream users only need one dependency.
pub use dyndens_density as density;
pub use dyndens_graph as graph;
