//! The pluggable maintenance-backend seam: [`MaintenanceEngine`] and
//! [`EngineBlueprint`].
//!
//! The sharded subsystem (`dyndens-shard`) was originally hard-wired to
//! [`DynDens`]. These two traits abstract exactly the surface the shard
//! worker, WAL checkpointing, crash recovery and the `partition_by`/`absorb`
//! rebalance paths consume, so alternative maintenance strategies — the
//! paper's recompute-from-scratch reference point, or a decade of follow-up
//! algorithms (fully-dynamic top-k densest, one-pass sketches) — run under
//! identical routing, persistence and serving:
//!
//! * [`MaintenanceEngine`] is one shard's worth of maintenance state: it
//!   ingests [`EdgeUpdate`]s, answers dense-subgraph reads, serialises
//!   itself to checkpoint bytes, and supports the split/merge and eviction
//!   operations live rebalancing and bounded-state retention rely on.
//! * [`EngineBlueprint`] is the *factory*: measure + configuration, able to
//!   build a fresh engine or restore one from checkpoint bytes, and to
//!   identify itself (a stable [`kind`](EngineBlueprint::kind) string plus a
//!   [`params`](EngineBlueprint::params) fingerprint) so a persistent shard
//!   directory is pinned to the backend that wrote it — reopening a
//!   directory under a different backend or configuration fails with a
//!   typed manifest mismatch instead of silently rebuilding.
//!
//! ## Contract
//!
//! Implementations must be **deterministic**: every read must be a pure
//! function of the update sequence applied so far (a lazily rebuilt cache
//! keyed by an update version is fine; wall-clock- or iteration-order-
//! dependent answers are not). This is what lets the cross-backend
//! differential oracle compare a sharded deployment of a backend against a
//! single engine of the *same* backend bit-for-bit, even though micro-batch
//! boundaries and snapshot cadences differ between the two runs.
//!
//! Read methods take `&mut self` precisely to permit such lazy caches;
//! engines that answer from always-fresh state (like [`DynDens`]) simply
//! ignore the mutability.

use dyndens_density::DensityMeasure;
use dyndens_graph::{DynamicGraph, EdgeUpdate, VertexId, VertexSet};

use crate::config::{DeltaIt, DynDensConfig};
use crate::engine::DynDens;
use crate::events::{DenseEvent, EngineStats};
use crate::evict::EvictionReport;
use crate::snapshot::SnapshotError;

/// One shard's worth of dense-subgraph maintenance state, behind a
/// backend-agnostic interface. See the [module docs](self) for the
/// determinism contract.
pub trait MaintenanceEngine: Clone + std::fmt::Debug + Send + 'static {
    /// Applies one edge weight update, appending any dense-set transitions
    /// to `events`.
    ///
    /// Backends that cannot afford per-update output maintenance (periodic
    /// rebuilders, read-time peelers) may emit no events; their deployments
    /// are then served via snapshot resync rather than delta pushes.
    fn apply_update_into(&mut self, update: EdgeUpdate, events: &mut Vec<DenseEvent>);

    /// Every maintained subgraph whose density clears the *output*
    /// threshold, with its score.
    fn output_dense_subgraphs(&mut self) -> Vec<(VertexSet, f64)>;

    /// Every maintained subgraph (the possibly-larger internal family), with
    /// its score. Backends without an internal band return the output set.
    fn dense_subgraphs(&mut self) -> Vec<(VertexSet, f64)>;

    /// Number of output-dense subgraphs.
    fn output_dense_count(&mut self) -> usize {
        self.output_dense_subgraphs().len()
    }

    /// Number of maintained subgraphs.
    fn dense_count(&mut self) -> usize {
        self.dense_subgraphs().len()
    }

    /// Checks the engine's internal invariants, returning the first
    /// violation found.
    fn validate(&mut self) -> Result<(), String>;

    /// The underlying weighted graph.
    fn graph(&self) -> &DynamicGraph;

    /// The engine's work ledger.
    fn stats(&self) -> &EngineStats;

    /// Replaces the work ledger wholesale (used by rebalance commits, where
    /// the rebuilt engine must carry the live parent's counters).
    fn adopt_stats(&mut self, stats: EngineStats);

    /// Marks the engine as replaying already-counted updates (WAL
    /// recovery): full maintenance work, no stat accumulation.
    fn set_recovering(&mut self, recovering: bool);

    /// Serialises the complete engine state to bytes. Restoring via
    /// [`EngineBlueprint::restore`] and snapshotting again must reproduce
    /// the same bytes (byte-stable round trip).
    fn snapshot(&self) -> Vec<u8>;

    /// Splits the engine into `(kept, other)` children by a vertex
    /// predicate; an edge or subgraph follows its minimum vertex. The
    /// children's union must equal the parent bit-for-bit (graph weights
    /// and stored scores); both children start with default stats (callers
    /// adopt ledgers explicitly).
    fn partition_by(&self, keep: &mut dyn FnMut(VertexId) -> bool) -> (Self, Self);

    /// Folds an edge- and subgraph-disjoint sibling into this engine — the
    /// inverse of [`partition_by`](Self::partition_by). Weights and scores
    /// are copied bit-for-bit; the ledgers are summed.
    fn absorb(&mut self, other: Self);

    /// The exact cancelling updates that would remove every edge with
    /// weight at or below `min_weight` (positive weights only), without
    /// applying them, in canonical ascending `(a, b)` order. The sharded
    /// compaction path journals these to the WAL *before* calling
    /// [`evict_below`](Self::evict_below), so the two must agree on the
    /// victim set.
    fn edges_below(&self, min_weight: f64) -> Vec<EdgeUpdate>;

    /// Evicts every edge with weight at or below `min_weight` through
    /// the ordinary update path, appending transitions to `events`.
    fn evict_below(&mut self, min_weight: f64, events: &mut Vec<DenseEvent>) -> EvictionReport;
}

/// A maintenance backend's identity and factory: everything the sharded
/// subsystem needs to build, restore, and *pin* engines of one kind. See
/// the [module docs](self).
pub trait EngineBlueprint: Clone + std::fmt::Debug + Send + Sync + 'static {
    /// The engine type this blueprint builds.
    type Engine: MaintenanceEngine;

    /// Stable machine-readable backend identifier (`"dyndens"`,
    /// `"recompute"`, ...), pinned in the shard MANIFEST. Reopening a
    /// directory under a blueprint with a different kind fails with
    /// `ManifestMismatch { field: "engine kind" }`.
    fn kind(&self) -> &'static str;

    /// The density measure's name, pinned in the MANIFEST alongside the
    /// kind.
    fn measure_name(&self) -> &'static str;

    /// A byte fingerprint of every answer-relevant configuration parameter,
    /// pinned in the MANIFEST. Two blueprints with equal `kind`, equal
    /// `measure_name` and equal `params` must produce interchangeable
    /// engines.
    fn params(&self) -> Vec<u8>;

    /// Builds a fresh, empty engine.
    fn fresh(&self) -> Self::Engine;

    /// Restores an engine from [`MaintenanceEngine::snapshot`] bytes.
    fn restore(&self, bytes: &[u8]) -> Result<Self::Engine, SnapshotError>;
}

/// Encodes the answer-relevant fields of a [`DynDensConfig`] as a canonical
/// byte fingerprint (threshold bits, `Nmax`, `delta_it` mode + value bits,
/// optimisation flags). Shared by every blueprint whose backend consumes a
/// [`DynDensConfig`], so equal configurations always produce equal
/// [`EngineBlueprint::params`] prefixes.
pub fn encode_config_params(config: &DynDensConfig) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + 8 + 1 + 8 + 1);
    out.extend_from_slice(&config.threshold.to_bits().to_le_bytes());
    out.extend_from_slice(&(config.n_max as u64).to_le_bytes());
    let (tag, value) = match config.delta_it {
        DeltaIt::Absolute(v) => (0u8, v),
        DeltaIt::FractionOfMax(v) => (1u8, v),
    };
    out.push(tag);
    out.extend_from_slice(&value.to_bits().to_le_bytes());
    let flags = (config.implicit_too_dense as u8)
        | ((config.max_explore as u8) << 1)
        | ((config.degree_prioritize as u8) << 2);
    out.push(flags);
    out
}

/// The [`EngineBlueprint`] of the incremental [`DynDens`] engine — the
/// reproduction's reference backend, bit-exact with the pre-trait stack.
#[derive(Debug, Clone)]
pub struct DynDensBlueprint<D: DensityMeasure> {
    measure: D,
    config: DynDensConfig,
}

impl<D: DensityMeasure> DynDensBlueprint<D> {
    /// A blueprint building [`DynDens`] engines over `measure` with
    /// `config`.
    pub fn new(measure: D, config: DynDensConfig) -> Self {
        DynDensBlueprint { measure, config }
    }

    /// The density measure.
    pub fn measure(&self) -> &D {
        &self.measure
    }

    /// The engine configuration.
    pub fn config(&self) -> &DynDensConfig {
        &self.config
    }
}

impl<D: DensityMeasure> EngineBlueprint for DynDensBlueprint<D> {
    type Engine = DynDens<D>;

    fn kind(&self) -> &'static str {
        "dyndens"
    }

    fn measure_name(&self) -> &'static str {
        self.measure.name()
    }

    fn params(&self) -> Vec<u8> {
        encode_config_params(&self.config)
    }

    fn fresh(&self) -> DynDens<D> {
        DynDens::new(self.measure.clone(), self.config.clone())
    }

    fn restore(&self, bytes: &[u8]) -> Result<DynDens<D>, SnapshotError> {
        DynDens::restore(self.measure.clone(), bytes)
    }
}

impl<D: DensityMeasure> MaintenanceEngine for DynDens<D> {
    fn apply_update_into(&mut self, update: EdgeUpdate, events: &mut Vec<DenseEvent>) {
        DynDens::apply_update_into(self, update, events);
    }

    fn output_dense_subgraphs(&mut self) -> Vec<(VertexSet, f64)> {
        DynDens::output_dense_subgraphs(self)
    }

    fn dense_subgraphs(&mut self) -> Vec<(VertexSet, f64)> {
        DynDens::dense_subgraphs(self)
    }

    fn output_dense_count(&mut self) -> usize {
        DynDens::output_dense_count(self)
    }

    fn dense_count(&mut self) -> usize {
        DynDens::dense_count(self)
    }

    fn validate(&mut self) -> Result<(), String> {
        DynDens::validate(self)
    }

    fn graph(&self) -> &DynamicGraph {
        DynDens::graph(self)
    }

    fn stats(&self) -> &EngineStats {
        DynDens::stats(self)
    }

    fn adopt_stats(&mut self, stats: EngineStats) {
        DynDens::adopt_stats(self, stats);
    }

    fn set_recovering(&mut self, recovering: bool) {
        DynDens::set_recovering(self, recovering);
    }

    fn snapshot(&self) -> Vec<u8> {
        DynDens::snapshot(self)
    }

    fn partition_by(&self, keep: &mut dyn FnMut(VertexId) -> bool) -> (Self, Self) {
        DynDens::partition_by(self, keep)
    }

    fn absorb(&mut self, other: Self) {
        DynDens::absorb(self, other);
    }

    fn edges_below(&self, min_weight: f64) -> Vec<EdgeUpdate> {
        DynDens::edges_below(self, min_weight)
    }

    fn evict_below(&mut self, min_weight: f64, events: &mut Vec<DenseEvent>) -> EvictionReport {
        DynDens::evict_below(self, min_weight, events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyndens_density::AvgWeight;

    fn drive<E: MaintenanceEngine>(engine: &mut E) {
        let mut events = Vec::new();
        for (a, b, d) in [(0u32, 1u32, 1.2), (1, 2, 1.1), (0, 2, 1.0)] {
            engine.apply_update_into(EdgeUpdate::new(VertexId(a), VertexId(b), d), &mut events);
        }
    }

    #[test]
    fn dyndens_backend_behaves_like_the_inherent_engine() {
        let blueprint = DynDensBlueprint::new(AvgWeight, DynDensConfig::new(1.0, 4));
        let mut engine = blueprint.fresh();
        drive(&mut engine);
        engine.validate().unwrap();
        assert!(MaintenanceEngine::output_dense_count(&mut engine) >= 4);
        assert_eq!(engine.stats().updates, 3);

        // Snapshot/restore round-trips byte-stably through the blueprint.
        let bytes = MaintenanceEngine::snapshot(&engine);
        let restored = blueprint.restore(&bytes).unwrap();
        assert_eq!(MaintenanceEngine::snapshot(&restored), bytes);
    }

    #[test]
    fn config_params_fingerprint_answer_relevant_fields() {
        let base = DynDensConfig::new(1.0, 4).with_delta_it(0.15);
        assert_eq!(
            encode_config_params(&base),
            encode_config_params(&base.clone())
        );
        for bent in [
            DynDensConfig::new(1.1, 4).with_delta_it(0.15),
            DynDensConfig::new(1.0, 5).with_delta_it(0.15),
            DynDensConfig::new(1.0, 4).with_delta_it(0.2),
            DynDensConfig::new(1.0, 4).with_delta_it_fraction(0.15),
            DynDensConfig::plain(1.0, 4).with_delta_it(0.15),
        ] {
            assert_ne!(encode_config_params(&base), encode_config_params(&bent));
        }
    }
}
