//! The dense subgraph index: a prefix tree over sorted vertex sets with
//! embedded per-vertex inverted lists (Section 3.2.1 of the paper).
//!
//! Every maintained subgraph is stored as a path from the root of the tree,
//! following its vertices in ascending order; the node at the end of the path
//! carries the subgraph's [`SubgraphInfo`]. Because dense subgraphs overlap
//! heavily, shared prefixes are stored once, keeping the memory footprint low.
//!
//! To iterate efficiently over the subgraphs containing a given vertex `u`,
//! every tree node labelled `u` is linked into `u`'s inverted list (a doubly
//! linked list threaded through the nodes themselves). A subgraph contains `u`
//! exactly when its path passes through a node labelled `u`, so iterating the
//! inverted list and walking each node's subtree visits every such subgraph
//! exactly once.
//!
//! Too-dense subgraphs may additionally carry a `*` marker (the
//! `ImplicitTooDense` optimisation of Section 3.2.3): the marker represents
//! all one-vertex extensions of the subgraph without materialising them.
//! Marked nodes are tracked in a separate set so the engine can iterate over
//! them on every update (the paper's `*` inverted list).

use dyndens_graph::{FxHashMap, FxHashSet, VertexId, VertexSet};

/// Identifier of a node in the prefix tree (an index into the node arena).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    const ROOT: NodeId = NodeId(0);

    #[inline]
    fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Per-subgraph information stored at the node terminating the subgraph's
/// path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubgraphInfo {
    /// The subgraph's score `Σ w_ij` over its internal edges.
    pub score: f64,
    /// The update epoch at which the subgraph was inserted (used to
    /// distinguish newly-dense subgraphs from pre-existing ones within a
    /// single update).
    pub discovered_epoch: u64,
    /// The exploration iteration at which the subgraph was discovered within
    /// its discovery epoch (Section 3.2.2, point ii).
    pub discovered_iteration: u32,
}

impl SubgraphInfo {
    /// Creates the info record for a subgraph discovered outside of any
    /// exploration (epoch and iteration 0).
    pub fn with_score(score: f64) -> Self {
        SubgraphInfo {
            score,
            discovered_epoch: 0,
            discovered_iteration: 0,
        }
    }
}

#[derive(Debug, Clone)]
struct Node {
    vertex: VertexId,
    parent: NodeId,
    depth: u32,
    /// Children sorted by vertex id for binary search.
    children: Vec<(VertexId, NodeId)>,
    info: Option<SubgraphInfo>,
    /// `ImplicitTooDense` marker: this subgraph is too-dense and its
    /// one-vertex extensions are represented implicitly.
    star: bool,
    inv_prev: Option<NodeId>,
    inv_next: Option<NodeId>,
    in_use: bool,
}

impl Node {
    fn new(vertex: VertexId, parent: NodeId, depth: u32) -> Self {
        Node {
            vertex,
            parent,
            depth,
            children: Vec::new(),
            info: None,
            star: false,
            inv_prev: None,
            inv_next: None,
            in_use: true,
        }
    }
}

/// The dense subgraph index.
#[derive(Debug, Clone)]
pub struct SubgraphIndex {
    nodes: Vec<Node>,
    free: Vec<NodeId>,
    /// Heads of the per-vertex inverted lists.
    inverted: FxHashMap<VertexId, NodeId>,
    /// Nodes currently carrying a `*` marker.
    star_bases: FxHashSet<NodeId>,
    /// Number of subgraphs (nodes with info).
    len: usize,
}

impl Default for SubgraphIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl SubgraphIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        // Node 0 is the root; its vertex label is never read.
        let root = Node::new(VertexId(u32::MAX - 1), NodeId::ROOT, 0);
        SubgraphIndex {
            nodes: vec![root],
            free: Vec::new(),
            inverted: FxHashMap::default(),
            star_bases: FxHashSet::default(),
            len: 0,
        }
    }

    /// Number of subgraphs stored in the index.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the index stores no subgraphs.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of allocated tree nodes (root excluded); exposed for memory
    /// accounting in benchmarks and for white-box tests.
    pub fn node_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.in_use).count() - 1
    }

    fn node(&self, id: NodeId) -> &Node {
        debug_assert!(self.nodes[id.idx()].in_use, "dangling NodeId");
        &self.nodes[id.idx()]
    }

    fn node_mut(&mut self, id: NodeId) -> &mut Node {
        debug_assert!(self.nodes[id.idx()].in_use, "dangling NodeId");
        &mut self.nodes[id.idx()]
    }

    fn child_of(&self, id: NodeId, v: VertexId) -> Option<NodeId> {
        let node = self.node(id);
        node.children
            .binary_search_by_key(&v, |&(cv, _)| cv)
            .ok()
            .map(|i| node.children[i].1)
    }

    fn alloc_node(&mut self, vertex: VertexId, parent: NodeId, depth: u32) -> NodeId {
        let id = match self.free.pop() {
            Some(id) => {
                self.nodes[id.idx()] = Node::new(vertex, parent, depth);
                id
            }
            None => {
                let id = NodeId(self.nodes.len() as u32);
                self.nodes.push(Node::new(vertex, parent, depth));
                id
            }
        };
        // Link into the inverted list of `vertex` (push front).
        let head = self.inverted.get(&vertex).copied();
        if let Some(h) = head {
            self.nodes[h.idx()].inv_prev = Some(id);
        }
        self.nodes[id.idx()].inv_next = head;
        self.inverted.insert(vertex, id);
        id
    }

    fn unlink_inverted(&mut self, id: NodeId) {
        let (vertex, prev, next) = {
            let n = &self.nodes[id.idx()];
            (n.vertex, n.inv_prev, n.inv_next)
        };
        match prev {
            Some(p) => self.nodes[p.idx()].inv_next = next,
            None => {
                // `id` was the head.
                match next {
                    Some(nx) => {
                        self.inverted.insert(vertex, nx);
                    }
                    None => {
                        self.inverted.remove(&vertex);
                    }
                }
            }
        }
        if let Some(nx) = next {
            self.nodes[nx.idx()].inv_prev = prev;
        }
        self.nodes[id.idx()].inv_prev = None;
        self.nodes[id.idx()].inv_next = None;
    }

    /// Finds the tree node for the exact vertex path, whether or not it
    /// carries subgraph info.
    fn find_node(&self, vertices: &[VertexId]) -> Option<NodeId> {
        let mut cur = NodeId::ROOT;
        for &v in vertices {
            cur = self.child_of(cur, v)?;
        }
        Some(cur)
    }

    /// Finds the subgraph with exactly these (sorted, duplicate-free)
    /// vertices, returning its node if it is stored in the index.
    pub fn find(&self, vertices: &[VertexId]) -> Option<NodeId> {
        debug_assert!(
            vertices.windows(2).all(|w| w[0] < w[1]),
            "vertices must be sorted"
        );
        let id = self.find_node(vertices)?;
        self.node(id).info.map(|_| id)
    }

    /// Looks up the subgraph `C ∪ {v}` given the node of `C` and an extra
    /// vertex `v` not in `C`. Cost is O(1) when `v` is larger than every
    /// vertex of `C`, and O(|C| + 1) otherwise.
    pub fn find_extension(&self, base: NodeId, v: VertexId) -> Option<NodeId> {
        let base_node = self.node(base);
        if base == NodeId::ROOT || v > base_node.vertex {
            let id = self.child_of(base, v)?;
            return self.node(id).info.map(|_| id);
        }
        let mut vertices = self.vertices(base);
        vertices.insert(v);
        self.find(vertices.as_slice())
    }

    /// Inserts (or overwrites) the subgraph with the given sorted vertices.
    /// Returns its node id.
    pub fn insert(&mut self, vertices: &[VertexId], info: SubgraphInfo) -> NodeId {
        debug_assert!(vertices.len() >= 2, "subgraphs have cardinality >= 2");
        debug_assert!(
            vertices.windows(2).all(|w| w[0] < w[1]),
            "vertices must be sorted"
        );
        let mut cur = NodeId::ROOT;
        for (depth, &v) in vertices.iter().enumerate() {
            cur = match self.child_of(cur, v) {
                Some(c) => c,
                None => {
                    let child = self.alloc_node(v, cur, depth as u32 + 1);
                    let parent = &mut self.nodes[cur.idx()];
                    let pos = parent
                        .children
                        .binary_search_by_key(&v, |&(cv, _)| cv)
                        .unwrap_err();
                    parent.children.insert(pos, (v, child));
                    child
                }
            };
        }
        if self.node(cur).info.is_none() {
            self.len += 1;
        }
        self.node_mut(cur).info = Some(info);
        cur
    }

    /// Removes the subgraph stored at `id` from the index, pruning any tree
    /// nodes that no longer serve a purpose. The `*` marker, if present, is
    /// removed as well.
    pub fn remove(&mut self, id: NodeId) {
        if self.node(id).info.is_some() {
            self.len -= 1;
        }
        self.node_mut(id).info = None;
        self.set_star(id, false);
        // Prune upwards while the node is an info-less, childless, non-root leaf.
        let mut cur = id;
        while cur != NodeId::ROOT {
            let (prune, parent, vertex) = {
                let n = self.node(cur);
                (
                    n.info.is_none() && n.children.is_empty() && !n.star,
                    n.parent,
                    n.vertex,
                )
            };
            if !prune {
                break;
            }
            self.unlink_inverted(cur);
            let parent_node = &mut self.nodes[parent.idx()];
            if let Ok(pos) = parent_node
                .children
                .binary_search_by_key(&vertex, |&(cv, _)| cv)
            {
                parent_node.children.remove(pos);
            }
            self.nodes[cur.idx()].in_use = false;
            self.free.push(cur);
            cur = parent;
        }
    }

    /// The vertices of the subgraph (or tree node) `id`, obtained by walking
    /// the parent pointers.
    pub fn vertices(&self, id: NodeId) -> VertexSet {
        let mut vs = Vec::with_capacity(self.node(id).depth as usize);
        let mut cur = id;
        while cur != NodeId::ROOT {
            let n = self.node(cur);
            vs.push(n.vertex);
            cur = n.parent;
        }
        vs.reverse();
        VertexSet::from_vertices(vs)
    }

    /// The cardinality of the subgraph at `id`.
    #[inline]
    pub fn cardinality(&self, id: NodeId) -> usize {
        self.node(id).depth as usize
    }

    /// Width of the fixed-size canonical [`path_key`](Self::path_key).
    pub const PATH_KEY_WIDTH: usize = 12;

    /// A fixed-width, allocation-free encoding of the node's vertex path,
    /// zero-padded at the tail. Key order equals lexicographic vertex-set
    /// order, and distinct paths map to distinct keys: paths are strictly
    /// ascending vertex sequences, so no real path can continue with
    /// another `0` once a vertex has been emitted. Returns `None` for paths
    /// deeper than the key width (callers fall back to materialising the
    /// vertex sets).
    ///
    /// This exists for the engine's canonical processing order: sorting
    /// affected subgraphs by vertex set on every update is hot-path work,
    /// and walking the parent chain into a stack array is ~an order of
    /// magnitude cheaper than building a `VertexSet` per node.
    pub fn path_key(&self, id: NodeId) -> Option<[u32; Self::PATH_KEY_WIDTH]> {
        let depth = self.cardinality(id);
        if depth > Self::PATH_KEY_WIDTH {
            return None;
        }
        let mut key = [0u32; Self::PATH_KEY_WIDTH];
        let mut cur = id;
        let mut i = depth;
        while cur != NodeId::ROOT {
            let n = self.node(cur);
            i -= 1;
            key[i] = n.vertex.0;
            cur = n.parent;
        }
        Some(key)
    }

    /// `true` if the subgraph at `id` contains vertex `v`.
    pub fn contains_vertex(&self, id: NodeId, v: VertexId) -> bool {
        let mut cur = id;
        while cur != NodeId::ROOT {
            let n = self.node(cur);
            if n.vertex == v {
                return true;
            }
            // Paths are sorted ascending, so once we walk past `v` we can stop.
            if n.vertex < v {
                return false;
            }
            cur = n.parent;
        }
        false
    }

    /// The info record of the subgraph at `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is a structural tree node without subgraph info.
    pub fn info(&self, id: NodeId) -> &SubgraphInfo {
        self.node(id)
            .info
            .as_ref()
            .expect("node does not store a subgraph")
    }

    /// Mutable access to the info record of the subgraph at `id`.
    pub fn info_mut(&mut self, id: NodeId) -> &mut SubgraphInfo {
        self.node_mut(id)
            .info
            .as_mut()
            .expect("node does not store a subgraph")
    }

    /// `true` if `id` currently stores a subgraph.
    pub fn has_info(&self, id: NodeId) -> bool {
        self.node(id).info.is_some()
    }

    /// The score of the subgraph at `id`.
    #[inline]
    pub fn score(&self, id: NodeId) -> f64 {
        self.info(id).score
    }

    /// Adds `delta` to the score of the subgraph at `id`, returning the new
    /// score.
    pub fn add_score(&mut self, id: NodeId, delta: f64) -> f64 {
        let info = self.info_mut(id);
        info.score += delta;
        info.score
    }

    /// Sets or clears the `*` (implicit too-dense) marker on the subgraph at
    /// `id`.
    pub fn set_star(&mut self, id: NodeId, star: bool) {
        if self.node(id).star == star {
            return;
        }
        self.node_mut(id).star = star;
        if star {
            self.star_bases.insert(id);
        } else {
            self.star_bases.remove(&id);
        }
    }

    /// `true` if the subgraph at `id` carries a `*` marker.
    pub fn has_star(&self, id: NodeId) -> bool {
        self.node(id).star
    }

    /// The subgraphs currently carrying a `*` marker.
    pub fn star_bases(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.star_bases.iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// Number of `*` markers in the index.
    pub fn star_count(&self) -> usize {
        self.star_bases.len()
    }

    /// The star-marked subgraphs whose vertex set is a subset of `set`
    /// (which must be sorted ascending, as in [`VertexSet::as_slice`]).
    ///
    /// Walks the prefix tree restricted to the vertices of `set`, so the cost
    /// is bounded by the number of subsets of `set` present as tree paths
    /// (at most `2^|set|` with `|set| <= Nmax`), independent of how many `*`
    /// markers the index holds — the difference between this and scanning
    /// [`star_bases`](Self::star_bases) is what makes coverage queries cheap
    /// on star-heavy workloads.
    pub fn star_bases_within(&self, set: &[VertexId]) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack: Vec<(NodeId, usize)> = vec![(NodeId::ROOT, 0)];
        while let Some((node, start)) = stack.pop() {
            if self.node(node).star {
                out.push(node);
            }
            for (i, &v) in set.iter().enumerate().skip(start) {
                if let Some(child) = self.child_of(node, v) {
                    stack.push((child, i + 1));
                }
            }
        }
        out
    }

    fn push_subtree_subgraphs(
        &self,
        root: NodeId,
        stop_at: Option<VertexId>,
        out: &mut Vec<NodeId>,
    ) {
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            let n = self.node(id);
            if id != root {
                if let Some(stop) = stop_at {
                    if n.vertex == stop {
                        continue;
                    }
                }
            }
            if n.info.is_some() {
                out.push(id);
            }
            for &(_, child) in &n.children {
                stack.push(child);
            }
        }
    }

    /// All subgraphs containing vertex `v`, each exactly once.
    pub fn subgraphs_containing(&self, v: VertexId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut cur = self.inverted.get(&v).copied();
        while let Some(id) = cur {
            self.push_subtree_subgraphs(id, None, &mut out);
            cur = self.node(id).inv_next;
        }
        out
    }

    /// All subgraphs containing vertex `a` or vertex `b`, each exactly once.
    ///
    /// Following Section 3.2.2: the subtrees hanging off the inverted list of
    /// the larger vertex are traversed first; the subtrees of the smaller
    /// vertex are then traversed, stopping whenever a node labelled with the
    /// larger vertex is encountered (those subgraphs contain both vertices and
    /// have already been visited).
    pub fn subgraphs_containing_either(&self, a: VertexId, b: VertexId) -> Vec<NodeId> {
        assert!(a != b);
        let (small, large) = if a < b { (a, b) } else { (b, a) };
        let mut out = Vec::new();
        let mut cur = self.inverted.get(&large).copied();
        while let Some(id) = cur {
            self.push_subtree_subgraphs(id, None, &mut out);
            cur = self.node(id).inv_next;
        }
        let mut cur = self.inverted.get(&small).copied();
        while let Some(id) = cur {
            self.push_subtree_subgraphs(id, Some(large), &mut out);
            cur = self.node(id).inv_next;
        }
        out
    }

    /// Iterates over every stored subgraph as `(node, vertices, info)`.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, VertexSet, &SubgraphInfo)> + '_ {
        self.nodes.iter().enumerate().filter_map(move |(i, n)| {
            if !n.in_use {
                return None;
            }
            let id = NodeId(i as u32);
            n.info.as_ref().map(|info| (id, self.vertices(id), info))
        })
    }

    /// The node ids of every stored subgraph.
    pub fn all_subgraphs(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.in_use && n.info.is_some())
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// Internal consistency check used by tests: inverted lists reference
    /// exactly the in-use nodes with the corresponding vertex label, the
    /// subgraph count matches, and star markers refer to stored subgraphs.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut info_count = 0usize;
        let mut labelled: FxHashMap<VertexId, usize> = FxHashMap::default();
        for (i, n) in self.nodes.iter().enumerate() {
            if !n.in_use || i == 0 {
                continue;
            }
            *labelled.entry(n.vertex).or_insert(0) += 1;
            if n.info.is_some() {
                info_count += 1;
            }
            if n.star && self.nodes[i].info.is_none() {
                return Err(format!("star marker on info-less node {i}"));
            }
            if n.star && !self.star_bases.contains(&NodeId(i as u32)) {
                return Err(format!("star marker on node {i} missing from star set"));
            }
        }
        if info_count != self.len {
            return Err(format!(
                "len {} does not match stored subgraphs {info_count}",
                self.len
            ));
        }
        for id in &self.star_bases {
            if !self.nodes[id.idx()].in_use || !self.nodes[id.idx()].star {
                return Err("stale star base".to_string());
            }
        }
        // Walk each inverted list and count membership.
        for (&v, &head) in &self.inverted {
            let mut count = 0usize;
            let mut cur = Some(head);
            let mut prev: Option<NodeId> = None;
            while let Some(id) = cur {
                let n = &self.nodes[id.idx()];
                if !n.in_use {
                    return Err(format!("inverted list of {v} references a freed node"));
                }
                if n.vertex != v {
                    return Err(format!(
                        "inverted list of {v} contains a node labelled {}",
                        n.vertex
                    ));
                }
                if n.inv_prev != prev {
                    return Err(format!("broken back-link in inverted list of {v}"));
                }
                prev = Some(id);
                cur = n.inv_next;
                count += 1;
                if count > self.nodes.len() {
                    return Err(format!("cycle in inverted list of {v}"));
                }
            }
            let expected = labelled.get(&v).copied().unwrap_or(0);
            if count != expected {
                return Err(format!(
                    "inverted list of {v} has {count} nodes, expected {expected}"
                ));
            }
        }
        // Every labelled vertex must have an inverted list.
        for (&v, &expected) in &labelled {
            if expected > 0 && !self.inverted.contains_key(&v) {
                return Err(format!("missing inverted list for {v}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vs(ids: &[u32]) -> Vec<VertexId> {
        ids.iter().map(|&i| VertexId(i)).collect()
    }

    fn insert(index: &mut SubgraphIndex, ids: &[u32], score: f64) -> NodeId {
        index.insert(&vs(ids), SubgraphInfo::with_score(score))
    }

    /// Builds the index of Figure 3: subgraphs {1,3}, {1,3,4}, {1,3,5},
    /// {3,4,5}, {4,5}.
    fn figure3_index() -> SubgraphIndex {
        let mut index = SubgraphIndex::new();
        insert(&mut index, &[1, 3], 1.0);
        insert(&mut index, &[1, 3, 4], 2.5);
        insert(&mut index, &[1, 3, 5], 2.4);
        insert(&mut index, &[3, 4, 5], 2.6);
        insert(&mut index, &[4, 5], 0.9);
        index
    }

    #[test]
    fn insert_find_and_len() {
        let index = figure3_index();
        assert_eq!(index.len(), 5);
        assert!(!index.is_empty());
        assert!(index.find(&vs(&[1, 3])).is_some());
        assert!(index.find(&vs(&[1, 3, 4])).is_some());
        assert!(index.find(&vs(&[1, 4])).is_none());
        // {1,3,4,5} shares a prefix but is not stored
        assert!(index.find(&vs(&[1, 3, 4, 5])).is_none());
        index.check_invariants().unwrap();
    }

    #[test]
    fn insert_overwrites_info() {
        let mut index = SubgraphIndex::new();
        let id1 = insert(&mut index, &[1, 2], 1.0);
        let id2 = insert(&mut index, &[1, 2], 2.0);
        assert_eq!(id1, id2);
        assert_eq!(index.len(), 1);
        assert_eq!(index.score(id1), 2.0);
    }

    #[test]
    fn vertices_cardinality_and_contains() {
        let index = figure3_index();
        let id = index.find(&vs(&[1, 3, 5])).unwrap();
        assert_eq!(index.vertices(id), VertexSet::from_ids(&[1, 3, 5]));
        assert_eq!(index.cardinality(id), 3);
        assert!(index.contains_vertex(id, VertexId(3)));
        assert!(index.contains_vertex(id, VertexId(5)));
        assert!(!index.contains_vertex(id, VertexId(4)));
        assert!(!index.contains_vertex(id, VertexId(0)));
    }

    #[test]
    fn score_updates() {
        let mut index = SubgraphIndex::new();
        let id = insert(&mut index, &[2, 7], 0.5);
        assert_eq!(index.add_score(id, 0.25), 0.75);
        assert_eq!(index.score(id), 0.75);
        assert!(index.has_info(id));
    }

    #[test]
    fn find_extension_fast_and_slow_path() {
        let index = figure3_index();
        let base = index.find(&vs(&[1, 3])).unwrap();
        // fast path: extension vertex larger than the base's last vertex
        let ext = index.find_extension(base, VertexId(4)).unwrap();
        assert_eq!(index.vertices(ext), VertexSet::from_ids(&[1, 3, 4]));
        assert!(index.find_extension(base, VertexId(6)).is_none());
        // slow path: extension vertex smaller than the base's last vertex
        let base45 = index.find(&vs(&[4, 5])).unwrap();
        let ext2 = index.find_extension(base45, VertexId(3)).unwrap();
        assert_eq!(index.vertices(ext2), VertexSet::from_ids(&[3, 4, 5]));
        assert!(index.find_extension(base45, VertexId(1)).is_none());
    }

    #[test]
    fn subgraphs_containing_single_vertex() {
        let index = figure3_index();
        let mut got: Vec<VertexSet> = index
            .subgraphs_containing(VertexId(4))
            .into_iter()
            .map(|id| index.vertices(id))
            .collect();
        got.sort();
        assert_eq!(
            got,
            vec![
                VertexSet::from_ids(&[1, 3, 4]),
                VertexSet::from_ids(&[3, 4, 5]),
                VertexSet::from_ids(&[4, 5]),
            ]
        );
        assert!(index.subgraphs_containing(VertexId(9)).is_empty());
    }

    #[test]
    fn subgraphs_containing_either_visits_each_once() {
        let index = figure3_index();
        let got = index.subgraphs_containing_either(VertexId(1), VertexId(4));
        let mut sets: Vec<VertexSet> = got.iter().map(|&id| index.vertices(id)).collect();
        sets.sort();
        sets.dedup();
        assert_eq!(
            sets.len(),
            got.len(),
            "each subgraph must be visited exactly once"
        );
        assert_eq!(
            sets,
            vec![
                VertexSet::from_ids(&[1, 3]),
                VertexSet::from_ids(&[1, 3, 4]),
                VertexSet::from_ids(&[1, 3, 5]),
                VertexSet::from_ids(&[3, 4, 5]),
                VertexSet::from_ids(&[4, 5]),
            ]
        );
        // Order-insensitive to which argument is larger.
        let got2 = index.subgraphs_containing_either(VertexId(4), VertexId(1));
        assert_eq!(got.len(), got2.len());
    }

    #[test]
    fn remove_prunes_chains() {
        let mut index = figure3_index();
        let nodes_before = index.node_count();
        let id = index.find(&vs(&[1, 3, 5])).unwrap();
        index.remove(id);
        assert_eq!(index.len(), 4);
        assert!(index.find(&vs(&[1, 3, 5])).is_none());
        // {1,3} still exists, so only one node (labelled 5) is pruned.
        assert_eq!(index.node_count(), nodes_before - 1);
        index.check_invariants().unwrap();

        // Removing {4,5} prunes the whole 4->5 chain.
        let id45 = index.find(&vs(&[4, 5])).unwrap();
        index.remove(id45);
        assert!(index.find(&vs(&[4, 5])).is_none());
        index.check_invariants().unwrap();

        // Removing {1,3} keeps the prefix node because {1,3,4} still hangs off it.
        let id13 = index.find(&vs(&[1, 3])).unwrap();
        index.remove(id13);
        assert!(index.find(&vs(&[1, 3])).is_none());
        assert!(index.find(&vs(&[1, 3, 4])).is_some());
        assert_eq!(index.len(), 2);
        index.check_invariants().unwrap();
    }

    #[test]
    fn removed_node_ids_are_reused() {
        let mut index = SubgraphIndex::new();
        let id = insert(&mut index, &[10, 20], 1.0);
        index.remove(id);
        assert!(index.is_empty());
        let id2 = insert(&mut index, &[11, 21], 1.0);
        // The arena reuses freed slots, so no unbounded growth.
        assert!(index.node_count() <= 2);
        assert!(index.has_info(id2));
        index.check_invariants().unwrap();
    }

    #[test]
    fn star_markers() {
        let mut index = figure3_index();
        let id13 = index.find(&vs(&[1, 3])).unwrap();
        assert_eq!(index.star_count(), 0);
        index.set_star(id13, true);
        index.set_star(id13, true); // idempotent
        assert!(index.has_star(id13));
        assert_eq!(index.star_bases(), vec![id13]);
        assert_eq!(index.star_count(), 1);
        index.check_invariants().unwrap();

        // Removing the subgraph clears the marker.
        index.remove(id13);
        assert_eq!(index.star_count(), 0);
        index.check_invariants().unwrap();
    }

    #[test]
    fn star_bases_within_restricts_to_subsets() {
        let mut index = figure3_index();
        let id13 = index.find(&vs(&[1, 3])).unwrap();
        let id134 = index.find(&vs(&[1, 3, 4])).unwrap();
        let id45 = index.find(&vs(&[4, 5])).unwrap();
        index.set_star(id13, true);
        index.set_star(id134, true);
        index.set_star(id45, true);

        // {1, 3, 4} admits the subsets {1,3} and {1,3,4} but not {4,5}.
        let mut within = index.star_bases_within(&vs(&[1, 3, 4]));
        within.sort_unstable();
        assert_eq!(within, vec![id13, id134]);
        // A superset of everything sees all three markers.
        assert_eq!(index.star_bases_within(&vs(&[1, 3, 4, 5])).len(), 3);
        // Disjoint and partial sets see none.
        assert!(index.star_bases_within(&vs(&[2, 6])).is_empty());
        assert!(index.star_bases_within(&vs(&[3, 4])).is_empty());
        assert!(index.star_bases_within(&vs(&[])).is_empty());
    }

    #[test]
    fn iter_and_all_subgraphs() {
        let index = figure3_index();
        let mut via_iter: Vec<VertexSet> = index.iter().map(|(_, v, _)| v).collect();
        via_iter.sort();
        let mut via_ids: Vec<VertexSet> = index
            .all_subgraphs()
            .into_iter()
            .map(|id| index.vertices(id))
            .collect();
        via_ids.sort();
        assert_eq!(via_iter, via_ids);
        assert_eq!(via_iter.len(), 5);
    }

    #[test]
    fn check_invariants_detects_len_mismatch() {
        let mut index = figure3_index();
        index.len = 17;
        assert!(index.check_invariants().is_err());
    }
}
