//! Criterion benchmark for the sharded ingest subsystem: the same synthetic
//! update stream pushed through `ShardedDynDens` at 1/2/4/8 shards, against
//! the single-threaded engine as the baseline.
//!
//! The stream is partition-aligned (planted near-clique communities drawn
//! from congruence classes, `ShardFn::Modulo`), so every sharding level
//! computes the identical output-dense answer and the comparison measures
//! pure ingest scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dyndens_bench::datasets::shard_aligned_stream;
use dyndens_core::{DynDens, DynDensConfig};
use dyndens_density::AvgWeight;
use dyndens_graph::EdgeUpdate;
use dyndens_shard::{ShardConfig, ShardFn, ShardedDynDens};

fn engine_config() -> DynDensConfig {
    DynDensConfig::new(1.0, 4).with_delta_it(0.15)
}

fn sharded_vs_single(c: &mut Criterion) {
    let updates: Vec<EdgeUpdate> = shard_aligned_stream(50_000, 8, 97);
    let mut group = c.benchmark_group("stream_pipeline_sharded");
    group.sample_size(10);
    group.throughput(Throughput::Elements(updates.len() as u64));

    group.bench_function("single_engine", |b| {
        b.iter(|| {
            let mut engine = DynDens::new(AvgWeight, engine_config());
            let mut events = Vec::new();
            for u in &updates {
                engine.apply_update_into(*u, &mut events);
                events.clear();
            }
            engine.output_dense_count()
        })
    });

    for n_shards in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("sharded", n_shards),
            &n_shards,
            |b, &n_shards| {
                b.iter(|| {
                    let mut sharded = ShardedDynDens::new(
                        AvgWeight,
                        engine_config(),
                        ShardConfig::new(n_shards)
                            .with_shard_fn(ShardFn::Modulo)
                            .with_max_batch(128)
                            .with_channel_capacity(4096),
                    );
                    for chunk in updates.chunks(512) {
                        sharded.apply_batch(chunk);
                    }
                    sharded.output_dense_count()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, sharded_vs_single);
criterion_main!(benches);
