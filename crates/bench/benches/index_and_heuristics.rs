//! Criterion micro-benchmarks for the dense subgraph index operations, the
//! delta_it trade-off (Fig. 4(g)), the heuristics (Fig. 4(j)) and the
//! ImplicitTooDense ablation (Sec. 5.1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dyndens_core::{DynDens, DynDensConfig, SubgraphIndex, SubgraphInfo};
use dyndens_density::AvgWeight;
use dyndens_graph::VertexId;
use dyndens_workloads::{SyntheticConfig, SyntheticStrategy, SyntheticWorkload};

fn index_operations(c: &mut Criterion) {
    // Insert / look up / remove a family of overlapping subgraphs.
    let subgraphs: Vec<Vec<VertexId>> = (0..2_000u32)
        .map(|i| {
            let base = i % 400;
            vec![
                VertexId(base),
                VertexId(base + 1 + (i % 3)),
                VertexId(base + 5 + (i % 7)),
                VertexId(base + 20 + (i % 11)),
            ]
        })
        .collect();

    c.bench_function("index_insert_2000_overlapping", |b| {
        b.iter(|| {
            let mut index = SubgraphIndex::new();
            for (i, vs) in subgraphs.iter().enumerate() {
                index.insert(vs, SubgraphInfo::with_score(i as f64));
            }
            index.len()
        })
    });

    let mut index = SubgraphIndex::new();
    for (i, vs) in subgraphs.iter().enumerate() {
        index.insert(vs, SubgraphInfo::with_score(i as f64));
    }
    c.bench_function("index_lookup_2000", |b| {
        b.iter(|| {
            let mut found = 0usize;
            for vs in &subgraphs {
                if index.find(vs).is_some() {
                    found += 1;
                }
            }
            found
        })
    });
    c.bench_function("index_containing_vertex_scan", |b| {
        b.iter(|| index.subgraphs_containing(VertexId(100)).len())
    });
}

fn near_clique_workload(updates: usize) -> SyntheticWorkload {
    let mut config = SyntheticConfig::near_clique(3_000, updates, 73);
    if let SyntheticStrategy::NearClique {
        max_pair_weight,
        groups,
        ..
    } = &mut config.strategy
    {
        *max_pair_weight = Some(1.4);
        *groups = 30;
    }
    SyntheticWorkload::generate(config)
}

fn run_with(config: DynDensConfig, workload: &SyntheticWorkload) -> usize {
    let mut engine = DynDens::new(AvgWeight, config);
    let mut events = Vec::new();
    for u in workload.updates() {
        events.clear();
        engine.apply_update_into(*u, &mut events);
    }
    engine.dense_count()
}

fn heuristics_ablation(c: &mut Criterion) {
    let workload = near_clique_workload(8_000);
    let mut group = c.benchmark_group("fig4j_heuristics");
    group.sample_size(10);
    for (name, max_explore, degree_prioritize) in [
        ("none", false, false),
        ("max_explore", true, false),
        ("degree_prioritize", false, true),
        ("both", true, true),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, _| {
            b.iter(|| {
                let config = DynDensConfig::new(0.7, 9)
                    .with_delta_it_fraction(0.4)
                    .with_max_explore(max_explore)
                    .with_degree_prioritize(degree_prioritize);
                run_with(config, &workload)
            })
        });
    }
    group.finish();
}

fn delta_it_tradeoff(c: &mut Criterion) {
    let workload = near_clique_workload(6_000);
    let mut group = c.benchmark_group("fig4g_delta_it");
    group.sample_size(10);
    for fraction in [0.01, 0.1, 0.4, 0.9] {
        group.bench_with_input(BenchmarkId::from_parameter(fraction), &fraction, |b, &f| {
            b.iter(|| {
                let config = DynDensConfig::new(0.7, 6).with_delta_it_fraction(f);
                run_with(config, &workload)
            })
        });
    }
    group.finish();
}

fn implicit_too_dense_ablation(c: &mut Criterion) {
    // A workload that *does* create too-dense subgraphs (no rejection cap).
    let workload = SyntheticWorkload::generate(SyntheticConfig::near_clique(1_500, 4_000, 17));
    let mut group = c.benchmark_group("implicit_too_dense");
    group.sample_size(10);
    for (name, implicit) in [("with_implicit", true), ("explore_all", false)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &implicit,
            |b, &implicit| {
                b.iter(|| {
                    let config = DynDensConfig::new(0.3, 6)
                        .with_delta_it_fraction(0.1)
                        .with_implicit_too_dense(implicit);
                    run_with(config, &workload)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    index_operations,
    heuristics_ablation,
    delta_it_tradeoff,
    implicit_too_dense_ablation
);
criterion_main!(benches);
