//! Criterion micro-benchmarks for the post → edge-weight-update pipeline
//! (association measures, decayed counters and the end-to-end story
//! pipeline). This is the counterpart of the paper's dataset-preparation cost
//! figures (under 90 seconds for a full day of posts).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dyndens_core::DynDensConfig;
use dyndens_density::AvgWeight;
use dyndens_stream::{
    ChiSquareCorrelation, EdgeUpdateGenerator, LogLikelihoodRatio, StoryPipeline,
};
use dyndens_workloads::{TweetSimulator, TweetSimulatorConfig};

fn corpus() -> dyndens_workloads::SimulatedCorpus {
    TweetSimulator::new(TweetSimulatorConfig {
        n_posts: 5_000,
        n_background_entities: 200,
        ..TweetSimulatorConfig::default()
    })
    .generate()
}

fn update_generation(c: &mut Criterion) {
    let corpus = corpus();
    let mut group = c.benchmark_group("post_to_update_pipeline");
    group.throughput(Throughput::Elements(corpus.posts.len() as u64));
    group.sample_size(10);
    group.bench_function("chi_square_weighted", |b| {
        b.iter(|| {
            let mut generator = EdgeUpdateGenerator::new(ChiSquareCorrelation::default(), 7_200.0);
            generator.process_posts(corpus.posts.iter()).len()
        })
    });
    group.bench_function("llr_unweighted", |b| {
        b.iter(|| {
            let mut generator = EdgeUpdateGenerator::new(LogLikelihoodRatio::default(), 7_200.0);
            generator.process_posts(corpus.posts.iter()).len()
        })
    });
    group.finish();
}

fn end_to_end_story_pipeline(c: &mut Criterion) {
    let corpus = corpus();
    let mut group = c.benchmark_group("end_to_end_story_pipeline");
    group.throughput(Throughput::Elements(corpus.posts.len() as u64));
    group.sample_size(10);
    group.bench_function("ingest_and_rank", |b| {
        b.iter(|| {
            let mut pipeline = StoryPipeline::new(
                ChiSquareCorrelation::default(),
                7_200.0,
                AvgWeight,
                DynDensConfig::new(0.4, 5).with_delta_it_fraction(0.25),
            );
            for post in &corpus.posts {
                pipeline.ingest_post(post);
            }
            pipeline.top_stories(5).len()
        })
    });
    group.finish();
}

criterion_group!(benches, update_generation, end_to_end_story_pipeline);
criterion_main!(benches);
