//! Criterion micro-benchmarks: per-update processing cost of the DynDens
//! engine across density measures and datasets (the micro-level counterpart of
//! Figures 4(a)–4(f)).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dyndens_bench::{unweighted_dataset, weighted_dataset, DatasetSpec};
use dyndens_core::{DynDens, DynDensConfig};
use dyndens_density::{AvgDegree, AvgWeight, DensityMeasure, SqrtDens};
use dyndens_graph::EdgeUpdate;

fn spec() -> DatasetSpec {
    DatasetSpec {
        n_posts: 6_000,
        n_background_entities: 200,
        seed: 2011,
    }
}

fn bench_stream<D: DensityMeasure + Copy>(
    c: &mut Criterion,
    group_name: &str,
    measure: D,
    threshold: f64,
    updates: &[EdgeUpdate],
) {
    let mut group = c.benchmark_group(group_name);
    group.throughput(Throughput::Elements(updates.len() as u64));
    group.sample_size(10);
    for &n_max in &[4usize, 6] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("Nmax={n_max}")),
            &n_max,
            |b, &n_max| {
                b.iter(|| {
                    let config = DynDensConfig::new(threshold, n_max).with_delta_it_fraction(0.05);
                    let mut engine = DynDens::new(measure, config);
                    let mut events = Vec::new();
                    for u in updates {
                        events.clear();
                        engine.apply_update_into(*u, &mut events);
                    }
                    engine.dense_count()
                })
            },
        );
    }
    group.finish();
}

fn engine_update_benches(c: &mut Criterion) {
    let weighted = weighted_dataset(&spec());
    let unweighted = unweighted_dataset(&spec());

    bench_stream(c, "fig4a_avgweight_weighted", AvgWeight, 0.5, &weighted);
    bench_stream(c, "fig4b_sqrtdens_weighted", SqrtDens, 0.7, &weighted);
    bench_stream(c, "fig4c_avgdegree_weighted", AvgDegree, 1.2, &weighted);
    bench_stream(c, "fig4d_avgweight_unweighted", AvgWeight, 1.0, &unweighted);
    bench_stream(c, "fig4e_sqrtdens_unweighted", SqrtDens, 1.0, &unweighted);
    bench_stream(c, "fig4f_avgdegree_unweighted", AvgDegree, 1.9, &unweighted);
}

criterion_group!(benches, engine_update_benches);
criterion_main!(benches);
