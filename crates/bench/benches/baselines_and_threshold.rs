//! Criterion micro-benchmarks for the baselines (GRASP, Stix, recompute) and
//! for the dynamic threshold adjustment (Figures 4(h)/(i) and 6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dyndens_baselines::{recompute, Grasp, GraspConfig, StixCliques};
use dyndens_bench::{unweighted_dataset, DatasetSpec};
use dyndens_core::{DynDens, DynDensConfig};
use dyndens_density::AvgWeight;
use dyndens_graph::EdgeUpdate;
use dyndens_workloads::{SyntheticConfig, SyntheticWorkload};

fn small_unweighted() -> Vec<EdgeUpdate> {
    unweighted_dataset(&DatasetSpec {
        n_posts: 4_000,
        n_background_entities: 150,
        seed: 2011,
    })
}

fn grasp_vs_dyndens(c: &mut Criterion) {
    let updates = small_unweighted();
    let mut group = c.benchmark_group("fig4hi_grasp_vs_dyndens");
    group.sample_size(10);
    group.bench_function("dyndens_exact", |b| {
        b.iter(|| {
            let mut engine = DynDens::new(
                AvgWeight,
                DynDensConfig::new(1.0, 5).with_delta_it_fraction(0.5),
            );
            for u in &updates {
                engine.apply_update(*u);
            }
            engine.output_dense_count()
        })
    });
    for iterations in [1usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("grasp_iterations", iterations),
            &iterations,
            |b, &iters| {
                b.iter(|| {
                    let mut grasp = Grasp::new(
                        AvgWeight,
                        1.0,
                        GraspConfig {
                            iterations_per_update: iters,
                            alpha: 0.5,
                            n_max: 5,
                            seed: 42,
                        },
                    );
                    for u in &updates {
                        grasp.apply_update(*u);
                    }
                    grasp.found().len()
                })
            },
        );
    }
    group.finish();
}

fn stix_vs_dyndens(c: &mut Criterion) {
    let updates = small_unweighted();
    let mut group = c.benchmark_group("stix_vs_dyndens");
    group.sample_size(10);
    group.bench_function("stix_maximal_cliques", |b| {
        b.iter(|| {
            let mut stix = StixCliques::new();
            for u in &updates {
                stix.apply_unweighted_update(u.a, u.b, u.is_positive());
            }
            stix.clique_count()
        })
    });
    group.bench_function("dyndens_all_cliques_nmax5", |b| {
        b.iter(|| {
            let mut engine = DynDens::new(
                AvgWeight,
                DynDensConfig::new(1.0, 5).with_delta_it_fraction(0.5),
            );
            for u in &updates {
                engine.apply_update(*u);
            }
            engine.dense_count()
        })
    });
    group.finish();
}

fn threshold_adjustment(c: &mut Criterion) {
    let workload =
        SyntheticWorkload::generate(SyntheticConfig::edge_preferential(5_000, 15_000, 2));
    let base_config = DynDensConfig::new(1.0, 5).with_delta_it_fraction(0.3);
    let mut base =
        DynDens::with_vertex_capacity(AvgWeight, base_config, workload.config().n_vertices);
    for u in workload.updates() {
        base.apply_update(*u);
    }

    let mut group = c.benchmark_group("fig6_threshold_adjustment");
    group.sample_size(10);
    group.bench_function("incremental_decrease_to_0.8", |b| {
        b.iter(|| {
            let mut engine = base.clone();
            engine.set_output_threshold(0.8);
            engine.output_dense_count()
        })
    });
    group.bench_function("incremental_increase_to_1.2", |b| {
        b.iter(|| {
            let mut engine = base.clone();
            engine.set_output_threshold(1.2);
            engine.output_dense_count()
        })
    });
    group.bench_function("full_recompute_at_0.8", |b| {
        b.iter(|| {
            let engine = recompute(
                AvgWeight,
                DynDensConfig::new(0.8, 5).with_delta_it_fraction(0.3),
                base.graph(),
            );
            engine.output_dense_count()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    grasp_vs_dyndens,
    stix_vs_dyndens,
    threshold_adjustment
);
criterion_main!(benches);
