//! # dyndens-bench
//!
//! Shared infrastructure for the benchmark harness that regenerates every
//! table and figure of the paper's evaluation (Sections 5, 6.2 and 7.3).
//!
//! The actual experiments live in two places:
//!
//! * **harness binaries** (`src/bin/*.rs`, run with
//!   `cargo run --release -p dyndens-bench --bin <name>`) print the same rows
//!   and series the paper reports — one binary per table/figure family; the
//!   per-experiment index in `DESIGN.md` maps each figure to its binary;
//! * **criterion benches** (`benches/*.rs`, run with `cargo bench`) measure
//!   the micro-level counterparts (per-update cost, index operations,
//!   threshold adjustment, heuristics, GRASP iterations).
//!
//! This library crate provides the pieces both share: simulated datasets
//! standing in for the paper's Twitter corpora, timing helpers and plain-text
//! table rendering.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod datasets;
pub mod report;
pub mod runner;

pub use datasets::{shard_aligned_stream, unweighted_dataset, weighted_dataset, DatasetSpec};
pub use report::{percentile, Table};
pub use runner::{run_updates, RunMeasurement};
