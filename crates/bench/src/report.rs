//! Plain-text table rendering and small statistics helpers shared by the
//! harness binaries.

/// The `p`-th percentile (`0.0..=100.0`, nearest-rank) of `samples`, sorting
/// them in place. Returns `0.0` for an empty slice. The single percentile
/// convention for every bench binary — pass **percent** (e.g. `99.0`), not a
/// fraction.
pub fn percentile(samples: &mut [f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("non-finite percentile sample"));
    let idx = ((p / 100.0 * samples.len() as f64).ceil() as usize).max(1) - 1;
    samples[idx.min(samples.len() - 1)]
}

/// A simple fixed-width table printer used by the harness binaries so every
//  experiment emits rows that can be pasted straight into `EXPERIMENTS.md`.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must have as many cells as there are headers).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                line.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_rows() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "12345".into()]);
        let rendered = t.render();
        assert!(rendered.contains("== demo =="));
        assert!(rendered.contains("alpha"));
        assert!(rendered.contains("12345"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_malformed_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
