//! Simulated benchmark datasets.
//!
//! The paper's evaluation uses two datasets derived from a one-day Twitter
//! sample: a *weighted* one (chi-square + correlation coefficient weights) and
//! an *unweighted* one (thresholded log-likelihood ratio, 0/1 weights). The
//! raw corpus is not redistributable, so the harness generates statistically
//! similar streams with the planted-story simulator and converts them with the
//! same association measures (see `DESIGN.md` for the substitution rationale).

use dyndens_graph::EdgeUpdate;
use dyndens_stream::{ChiSquareCorrelation, LogLikelihoodRatio};
use dyndens_workloads::{TweetSimulator, TweetSimulatorConfig};

/// Parameters of a simulated dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Number of simulated posts.
    pub n_posts: usize,
    /// Number of background entities.
    pub n_background_entities: usize,
    /// RNG seed.
    pub seed: u64,
}

impl DatasetSpec {
    /// The default harness scale: large enough to show the trends, small
    /// enough to run every experiment on a laptop in minutes.
    pub fn default_scale() -> Self {
        DatasetSpec {
            n_posts: 60_000,
            n_background_entities: 800,
            seed: 2011,
        }
    }

    /// Scales the number of posts (and entities, sub-linearly) by `factor`.
    pub fn scaled(factor: f64) -> Self {
        let base = Self::default_scale();
        DatasetSpec {
            n_posts: ((base.n_posts as f64) * factor).max(1_000.0) as usize,
            n_background_entities: ((base.n_background_entities as f64) * factor.sqrt()).max(100.0)
                as usize,
            seed: base.seed,
        }
    }

    fn simulator_config(&self) -> TweetSimulatorConfig {
        TweetSimulatorConfig {
            n_posts: self.n_posts,
            n_background_entities: self.n_background_entities,
            seed: self.seed,
            ..TweetSimulatorConfig::default()
        }
    }
}

/// The *weighted* dataset: chi-square + correlation-coefficient weights with a
/// two-hour mean post life. Returns the edge weight update stream.
pub fn weighted_dataset(spec: &DatasetSpec) -> Vec<EdgeUpdate> {
    let corpus = TweetSimulator::new(spec.simulator_config()).generate();
    corpus.to_updates(ChiSquareCorrelation::default(), Some(2.0 * 3600.0))
}

/// The *unweighted* dataset: thresholded log-likelihood-ratio weights (0/1
/// edges) with a two-hour mean post life.
pub fn unweighted_dataset(spec: &DatasetSpec) -> Vec<EdgeUpdate> {
    let corpus = TweetSimulator::new(spec.simulator_config()).generate();
    corpus.to_updates(LogLikelihoodRatio::default(), Some(2.0 * 3600.0))
}

// The partition-aligned planted-community stream moved to the workload
// library (it is now the `AlignedCommunities` scenario); re-exported here so
// existing bench bins and scripts keep compiling unchanged.
pub use dyndens_workloads::shard_aligned_stream;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datasets_are_nonempty_and_deterministic() {
        let spec = DatasetSpec {
            n_posts: 4_000,
            n_background_entities: 120,
            seed: 3,
        };
        let w1 = weighted_dataset(&spec);
        let w2 = weighted_dataset(&spec);
        assert_eq!(w1, w2);
        assert!(!w1.is_empty());
        let u = unweighted_dataset(&spec);
        assert!(!u.is_empty());
        // The unweighted dataset has far fewer updates (edges only appear or
        // disappear), mirroring the 43K vs 41.5M relationship in the paper.
        assert!(u.len() < w1.len());
    }

    #[test]
    fn scaling_changes_volume() {
        let small = DatasetSpec::scaled(0.02);
        let smaller_still = DatasetSpec::scaled(0.01);
        assert!(small.n_posts > smaller_still.n_posts);
        assert_eq!(DatasetSpec::default_scale().n_posts, 60_000);
    }
}
