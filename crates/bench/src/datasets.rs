//! Simulated benchmark datasets.
//!
//! The paper's evaluation uses two datasets derived from a one-day Twitter
//! sample: a *weighted* one (chi-square + correlation coefficient weights) and
//! an *unweighted* one (thresholded log-likelihood ratio, 0/1 weights). The
//! raw corpus is not redistributable, so the harness generates statistically
//! similar streams with the planted-story simulator and converts them with the
//! same association measures (see `DESIGN.md` for the substitution rationale).

use dyndens_graph::{EdgeUpdate, FxHashMap, VertexId};
use dyndens_stream::{ChiSquareCorrelation, LogLikelihoodRatio};
use dyndens_workloads::{TweetSimulator, TweetSimulatorConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a simulated dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Number of simulated posts.
    pub n_posts: usize,
    /// Number of background entities.
    pub n_background_entities: usize,
    /// RNG seed.
    pub seed: u64,
}

impl DatasetSpec {
    /// The default harness scale: large enough to show the trends, small
    /// enough to run every experiment on a laptop in minutes.
    pub fn default_scale() -> Self {
        DatasetSpec {
            n_posts: 60_000,
            n_background_entities: 800,
            seed: 2011,
        }
    }

    /// Scales the number of posts (and entities, sub-linearly) by `factor`.
    pub fn scaled(factor: f64) -> Self {
        let base = Self::default_scale();
        DatasetSpec {
            n_posts: ((base.n_posts as f64) * factor).max(1_000.0) as usize,
            n_background_entities: ((base.n_background_entities as f64) * factor.sqrt()).max(100.0)
                as usize,
            seed: base.seed,
        }
    }

    fn simulator_config(&self) -> TweetSimulatorConfig {
        TweetSimulatorConfig {
            n_posts: self.n_posts,
            n_background_entities: self.n_background_entities,
            seed: self.seed,
            ..TweetSimulatorConfig::default()
        }
    }
}

/// The *weighted* dataset: chi-square + correlation-coefficient weights with a
/// two-hour mean post life. Returns the edge weight update stream.
pub fn weighted_dataset(spec: &DatasetSpec) -> Vec<EdgeUpdate> {
    let corpus = TweetSimulator::new(spec.simulator_config()).generate();
    corpus.to_updates(ChiSquareCorrelation::default(), Some(2.0 * 3600.0))
}

/// The *unweighted* dataset: thresholded log-likelihood-ratio weights (0/1
/// edges) with a two-hour mean post life.
pub fn unweighted_dataset(spec: &DatasetSpec) -> Vec<EdgeUpdate> {
    let corpus = TweetSimulator::new(spec.simulator_config()).generate();
    corpus.to_updates(LogLikelihoodRatio::default(), Some(2.0 * 3600.0))
}

/// A partition-aligned planted-community update stream for the sharded
/// subsystem's scaling and equivalence experiments.
///
/// Every community's vertices share one congruence class modulo `alignment`,
/// so under `ShardFn::Modulo` with any shard count dividing `alignment` each
/// community — and therefore each of its edges and dense subgraphs — is owned
/// by exactly one shard. Per-pair weights are capped at 1.45, which (for the
/// canonical `AvgWeight`, `T = 1`, `Nmax = 4`, `delta_it = 0.15` setup) keeps
/// every subgraph below the too-dense regime: pairs would need score ≥ 2.85
/// and triangles ≥ 6 to become too-dense, and no cross-community subgraph can
/// clear the dense bound from edge-disjoint parts. Together these two
/// properties make the `dyndens-shard` partitioning invariant hold exactly,
/// so the union of per-shard answers is *identical* to the single-engine
/// answer and the benchmarks measure pure ingest scaling.
pub fn shard_aligned_stream(n_updates: usize, alignment: usize, seed: u64) -> Vec<EdgeUpdate> {
    assert!(alignment >= 1, "alignment must be at least 1");
    const MAX_PAIR_WEIGHT: f64 = 1.45;
    const N_GROUPS: usize = 32;
    const GROUP_SPAN: usize = 8;

    let mut rng = StdRng::seed_from_u64(seed);
    // Community g draws from residue class g % alignment; disjoint blocks of
    // the class keep distinct communities vertex-disjoint.
    let groups: Vec<Vec<VertexId>> = (0..N_GROUPS)
        .map(|g| {
            let size = 4 + g % 2; // communities of 4 or 5 entities
            (0..size)
                .map(|i| VertexId(((g * GROUP_SPAN + i) * alignment + g % alignment) as u32))
                .collect()
        })
        .collect();

    let mut weights: FxHashMap<(VertexId, VertexId), f64> = FxHashMap::default();
    let mut updates = Vec::with_capacity(n_updates);
    while updates.len() < n_updates {
        let group = &groups[rng.gen_range(0..groups.len())];
        let a = group[rng.gen_range(0..group.len())];
        let b = group[rng.gen_range(0..group.len())];
        if a == b {
            continue;
        }
        let key = (a.min(b), a.max(b));
        let current = weights.get(&key).copied().unwrap_or(0.0);
        let magnitude: f64 = rng.gen_range(0.02..0.12);
        let delta = if rng.gen_bool(0.15) {
            if current <= 0.0 {
                continue;
            }
            -magnitude.min(current)
        } else {
            // Clamp so the pair never enters the too-dense regime.
            magnitude.min(MAX_PAIR_WEIGHT - current)
        };
        if delta.abs() < 1e-9 {
            continue;
        }
        let new_weight = current + delta;
        if new_weight <= 1e-12 {
            weights.remove(&key);
        } else {
            weights.insert(key, new_weight);
        }
        updates.push(EdgeUpdate::new(key.0, key.1, delta));
    }
    updates
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datasets_are_nonempty_and_deterministic() {
        let spec = DatasetSpec {
            n_posts: 4_000,
            n_background_entities: 120,
            seed: 3,
        };
        let w1 = weighted_dataset(&spec);
        let w2 = weighted_dataset(&spec);
        assert_eq!(w1, w2);
        assert!(!w1.is_empty());
        let u = unweighted_dataset(&spec);
        assert!(!u.is_empty());
        // The unweighted dataset has far fewer updates (edges only appear or
        // disappear), mirroring the 43K vs 41.5M relationship in the paper.
        assert!(u.len() < w1.len());
    }

    #[test]
    fn shard_aligned_stream_respects_alignment_and_caps() {
        let updates = shard_aligned_stream(5_000, 8, 42);
        assert_eq!(updates.len(), 5_000);
        assert_eq!(updates, shard_aligned_stream(5_000, 8, 42));
        let mut weights: FxHashMap<(VertexId, VertexId), f64> = FxHashMap::default();
        for u in &updates {
            // Both endpoints share a congruence class mod 8 (and mod 2/4).
            assert_eq!(u.a.0 % 8, u.b.0 % 8, "cross-class edge {u:?}");
            let w = weights.entry((u.a, u.b)).or_insert(0.0);
            *w += u.delta;
            assert!(*w >= -1e-9, "negative weight after {u:?}");
            assert!(
                *w <= 1.45 + 1e-9,
                "weight above the too-dense cap after {u:?}"
            );
        }
        assert!(updates.iter().any(|u| u.is_negative()));
    }

    #[test]
    fn scaling_changes_volume() {
        let small = DatasetSpec::scaled(0.02);
        let smaller_still = DatasetSpec::scaled(0.01);
        assert!(small.n_posts > smaller_still.n_posts);
        assert_eq!(DatasetSpec::default_scale().n_posts, 60_000);
    }
}
