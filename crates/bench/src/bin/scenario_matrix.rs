//! The scenario matrix: every workload in the scenario & adversary library,
//! measured and judged in one run.
//!
//! Per workload, the bench reports:
//!
//! * **ingest rate** — wall-clock updates/sec through a 2-shard fleet;
//! * **rebalancer splits triggered** — how often the windowed skew policy
//!   (production thresholds, `scenario_policy` cadence) fires across the
//!   stream. Triggered splits are executed (capped at two, the community-
//!   aligned depth bound) so hysteresis — not a stuck hot window — is what
//!   the count measures;
//! * **evictions** — subgraphs dropped by a final `compact_below(0.05)`
//!   pass, the bounded-state story for each traffic shape;
//! * **top-k churn** — total turnover of the top-16 story board across
//!   decision windows, the serving-layer cost of the workload's dynamics;
//! * **the oracle verdict** — the differential oracle's full four-leg run
//!   (sharded/recovery/rebalance/serve), `bit_exact` per leg.
//!
//! Prints a table and writes `BENCH_scenarios.json` with one row per
//! workload; CI's scenario-smoke step gates on every row being present and
//! bit-exact, and on `flash_crowd` having triggered at least one split.
//!
//! Env knobs: `SCENARIO_UPDATES` (default 20000) scales every stream.
//!
//! Run with `cargo run --release -p dyndens-bench --bin scenario_matrix`.

use std::collections::BTreeSet;
use std::time::Instant;

use dyndens_bench::Table;
use dyndens_density::AvgWeight;
use dyndens_graph::VertexSet;
use dyndens_shard::{Rebalancer, ShardedDynDens};
use dyndens_workloads::oracle::{engine_config, scenario_policy, shard_config};
use dyndens_workloads::{
    AdversarialSkew, AlignedCommunities, DocCorpus, FlashCrowd, GeoPartitioned, Oracle,
    OracleReport, Workload,
};

const N_SHARDS: usize = 2;
const CHUNK: usize = 512;
/// Decision windows per stream (the rebalancer cadence).
const WINDOWS: usize = 10;
/// Story board size the churn metric watches.
const TOP_K: usize = 16;
/// Community-aligned split depth bound: beyond two refinements of a base
/// slot the routing bits start cutting *through* communities (alignment 8
/// over 2 base shards), so the matrix executes at most two splits.
const MAX_EXECUTED_SPLITS: usize = 2;
const EVICT_BELOW: f64 = 0.05;

struct Row {
    name: String,
    n_updates: usize,
    updates_per_sec: f64,
    splits_triggered: usize,
    splits_executed: usize,
    evicted: u64,
    topk_churn: usize,
    output_dense: usize,
    report: OracleReport,
}

fn measure(workload: &dyn Workload) -> Row {
    let updates = workload.updates();
    let window = (updates.len() / WINDOWS).max(1);

    let mut fleet = ShardedDynDens::new(AvgWeight, engine_config(), shard_config(N_SHARDS));
    let mut rebalancer = Rebalancer::new(scenario_policy(window as u64));
    let mut splits_triggered = 0usize;
    let mut splits_executed = 0usize;
    let mut churn = 0usize;
    let mut board: BTreeSet<VertexSet> = BTreeSet::new();

    let start = Instant::now();
    for tranche in updates.chunks(window) {
        for chunk in tranche.chunks(CHUNK) {
            fleet.apply_batch(chunk);
        }
        fleet.flush();
        if let Some(slot) = rebalancer.pick(&fleet) {
            splits_triggered += 1;
            if splits_executed < MAX_EXECUTED_SPLITS {
                fleet.split_shard(slot).expect("scenario split");
                splits_executed += 1;
            }
        }
        // Top-k churn: symmetric difference of the story board between
        // consecutive decision windows.
        let next: BTreeSet<VertexSet> = fleet
            .view()
            .snapshot()
            .stories
            .into_iter()
            .take(TOP_K)
            .map(|(s, _)| s)
            .collect();
        churn += next.symmetric_difference(&board).count();
        board = next;
    }
    let secs = start.elapsed().as_secs_f64();
    fleet.validate().expect("fleet invariants");
    let output_dense = fleet.output_dense_count();
    let evicted = fleet.compact_below(EVICT_BELOW);

    // The oracle runs on fresh deployments: the verdict is a property of the
    // workload and the stack, independent of the measured fleet above.
    let report = Oracle::new(workload).run();

    Row {
        name: report.workload.clone(),
        n_updates: updates.len(),
        updates_per_sec: updates.len() as f64 / secs,
        splits_triggered,
        splits_executed,
        evicted,
        topk_churn: churn,
        output_dense,
        report,
    }
}

fn json_row(row: &Row) -> String {
    let legs: Vec<String> = row
        .report
        .legs
        .iter()
        .map(|l| {
            format!(
                "      {{\"leg\": \"{}\", \"bit_exact\": {}}}",
                l.leg, l.bit_exact
            )
        })
        .collect();
    format!(
        "    \"{}\": {{\n      \"n_updates\": {},\n      \"updates_per_sec\": {:.1},\n      \
         \"splits_triggered\": {},\n      \"splits_executed\": {},\n      \"evicted\": {},\n      \
         \"topk_churn\": {},\n      \"output_dense\": {},\n      \"star_markers\": {},\n      \
         \"bit_exact\": {},\n      \"legs\": [\n{}\n      ]\n    }}",
        row.name,
        row.n_updates,
        row.updates_per_sec,
        row.splits_triggered,
        row.splits_executed,
        row.evicted,
        row.topk_churn,
        row.output_dense,
        row.report.star_markers,
        row.report.bit_exact(),
        legs.join(",\n")
    )
}

fn main() {
    let n_updates: usize = std::env::var("SCENARIO_UPDATES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    // Documents lower to ~6 pair-updates each; size the corpus to match the
    // other streams' update volume.
    let n_docs = (n_updates / 6).max(100);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("{cores} CPU core(s) available, {n_updates} updates per scenario");

    let aligned = AlignedCommunities::new(n_updates, 2012);
    let flash = FlashCrowd::new(n_updates, 2026);
    let skew = AdversarialSkew::new(n_updates, 2026);
    let docs = DocCorpus::new(n_docs, 2026);
    let geo = GeoPartitioned::new(n_updates, 2026);
    let workloads: [&dyn Workload; 5] = [&aligned, &flash, &skew, &docs, &geo];

    let rows: Vec<Row> = workloads.iter().map(|w| measure(*w)).collect();

    let mut table = Table::new(
        "Scenario matrix (2-shard fleet, production rebalance thresholds)",
        &[
            "workload",
            "updates",
            "upd/s",
            "splits",
            "evicted",
            "churn",
            "dense",
            "bit-exact",
        ],
    );
    for row in &rows {
        table.row(vec![
            row.name.to_string(),
            row.n_updates.to_string(),
            format!("{:.0}", row.updates_per_sec),
            format!("{}/{}", row.splits_executed, row.splits_triggered),
            row.evicted.to_string(),
            row.topk_churn.to_string(),
            row.output_dense.to_string(),
            row.report.bit_exact().to_string(),
        ]);
    }
    table.print();

    for row in &rows {
        row.report.assert_bit_exact();
    }

    let json_rows: Vec<String> = rows.iter().map(json_row).collect();
    let json = format!(
        "{{\n  \"n_updates\": {n_updates},\n  \"cpu_cores\": {cores},\n  \"n_shards\": \
         {N_SHARDS},\n  \"windows\": {WINDOWS},\n  \"top_k\": {TOP_K},\n  \"scenarios\": \
         {{\n{}\n  }}\n}}\n",
        json_rows.join(",\n")
    );
    match std::fs::write("BENCH_scenarios.json", json) {
        Ok(()) => println!("wrote BENCH_scenarios.json"),
        Err(e) => eprintln!("failed to write BENCH_scenarios.json: {e}"),
    }
}
