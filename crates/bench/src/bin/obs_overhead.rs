//! Observability smoke + overhead benchmark: proves the instrumentation
//! layer is (a) cheap enough to leave on and (b) actually lit end to end.
//!
//! **Phase 1 — overhead.** Alternating plain/instrumented passes of the
//! partition-aligned 50k-update stream through an in-memory 2-shard fleet,
//! min-of-N each (the minimum is the noise-robust estimator on a shared CI
//! runner). `overhead_pct` is the instrumented minimum against the plain
//! minimum; CI gates it under 3%.
//!
//! **Phase 2 — live scrape.** A persistent fleet (`FsyncPolicy::Always`) and
//! a [`StoryServer`] share one [`Registry`]; the harness ingests the stream
//! with a polling follower riding along, splits shard 0 mid-stream, then
//! scrapes the server with a wire `Metrics` request and checks the snapshot
//! is self-consistent: per-shard apply-latency histograms populated, WAL
//! fsync counters nonzero, `wal_appends == batches_applied` (durability
//! before visibility pairs them 1:1 when no compaction runs), per-type serve
//! latencies recorded, and the split's lifecycle span in the event journal.
//! The Prometheus text exposition is validated line by line.
//!
//! Run with `cargo run --release -p dyndens-bench --bin obs_overhead`.
//! Writes `BENCH_obs.json`; CI's obs-smoke step gates on it.

use std::sync::Arc;
use std::time::Instant;

use dyndens_bench::{shard_aligned_stream, Table};
use dyndens_core::DynDensConfig;
use dyndens_density::AvgWeight;
use dyndens_graph::EdgeUpdate;
use dyndens_obs::{names, ObsEvent, ObsHandle, RebalanceStage, Registry, RegistrySnapshot};
use dyndens_serve::{Client, Mirror, StoryServer};
use dyndens_shard::{FsyncPolicy, PersistenceConfig, ShardConfig, ShardFn, ShardedDynDens};

const N_UPDATES: usize = 50_000;
const ALIGNMENT: usize = 8;
const SEED: u64 = 2012;
const CHUNK: usize = 512;
/// Timed passes per arm; the minimum of each arm is compared.
const PASSES: usize = 5;
/// Stream position of the mid-ingest split in the live phase.
const SPLIT_AT: usize = 24_576;

fn engine_config() -> DynDensConfig {
    DynDensConfig::new(1.0, 4).with_delta_it(0.15)
}

fn shard_config() -> ShardConfig {
    ShardConfig::new(2)
        .with_shard_fn(ShardFn::Modulo)
        .with_max_batch(128)
        .with_channel_capacity(4096)
}

/// One timed ingest pass over the full stream through a fresh in-memory
/// fleet, instrumented when `registry` is given. Construction (including
/// metric registration) happens outside the clock: the gate is on the ingest
/// hot path, not one-time setup.
fn timed_pass(updates: &[EdgeUpdate], registry: Option<&Arc<Registry>>) -> f64 {
    let mut config = shard_config();
    if let Some(r) = registry {
        config = config.with_obs(Arc::clone(r));
    }
    let mut fleet = ShardedDynDens::new(AvgWeight, engine_config(), config);
    let start = Instant::now();
    for chunk in updates.chunks(CHUNK) {
        fleet.apply_batch(chunk);
    }
    fleet.flush();
    start.elapsed().as_secs_f64()
}

/// `true` when every line of the text exposition is either a
/// `# TYPE name counter|gauge|histogram` comment or a
/// `series[{labels}] integer-value` sample.
fn exposition_is_valid(text: &str) -> bool {
    text.lines().all(|line| {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let name = parts.next().unwrap_or("");
            let kind = parts.next().unwrap_or("");
            !name.is_empty()
                && parts.next().is_none()
                && matches!(kind, "counter" | "gauge" | "histogram")
        } else {
            let Some((series, value)) = line.rsplit_once(' ') else {
                return false;
            };
            if value.parse::<u64>().is_err() {
                return false;
            }
            let name_part = series.split('{').next().unwrap_or("");
            !name_part.is_empty()
                && name_part
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_')
                && (series.contains('{') == series.ends_with('}'))
        }
    })
}

/// The count of one per-type serve latency histogram in the snapshot.
fn serve_latency_count(snapshot: &RegistrySnapshot, kind: &str) -> u64 {
    snapshot
        .histograms
        .iter()
        .find(|h| {
            h.name.name == names::SERVE_REQUEST_LATENCY_US && h.name.label("type") == Some(kind)
        })
        .map(|h| h.hist.count)
        .unwrap_or(0)
}

struct LiveScrape {
    wal_appends: u64,
    batches_applied: u64,
    wal_fsyncs: u64,
    apply_count: u64,
    apply_p50_us: u64,
    apply_p99_us: u64,
    apply_shards: usize,
    poll_count: u64,
    poll_p99_us: u64,
    topk_count: u64,
    stats_count: u64,
    split_events: usize,
    split_committed: usize,
    journal_events: usize,
    series_counters: usize,
    series_gauges: usize,
    series_histograms: usize,
    exposition_lines: usize,
    exposition_valid: bool,
}

fn live_phase(updates: &[EdgeUpdate]) -> LiveScrape {
    let dir = std::env::temp_dir().join(format!("dyndens-obs-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let registry = Arc::new(Registry::new());
    let mut fleet = ShardedDynDens::with_persistence(
        AvgWeight,
        engine_config(),
        shard_config().with_obs(Arc::clone(&registry)),
        PersistenceConfig::new(&dir).with_fsync(FsyncPolicy::Always),
    )
    .expect("persistent fleet");
    let server = StoryServer::bind_with_obs(
        "127.0.0.1:0",
        fleet.view(),
        ObsHandle::new(Arc::clone(&registry)),
    )
    .expect("server bind");
    let mut client = Client::builder()
        .connect(server.local_addr())
        .expect("client connect");
    let mut follower = Mirror::new();

    let mut ingested = 0usize;
    let mut split_done = false;
    for chunk in updates.chunks(CHUNK) {
        fleet.apply_batch(chunk);
        ingested += chunk.len();
        follower.poll(&mut client).expect("poll request");
        if !split_done && ingested >= SPLIT_AT {
            fleet.split_shard(0).expect("mid-stream split");
            split_done = true;
        }
    }
    fleet.flush();
    while follower.poll(&mut client).expect("poll request") {}
    client.top_k(8).expect("topk request");
    client.stats().expect("stats request");

    // The scrape an operator's collector would run, over the wire.
    let snapshot = client.metrics().expect("metrics scrape");
    let apply = snapshot.merged_histogram(names::SHARD_APPLY_LATENCY_US);
    let poll = snapshot
        .histograms
        .iter()
        .find(|h| {
            h.name.name == names::SERVE_REQUEST_LATENCY_US && h.name.label("type") == Some("poll")
        })
        .map(|h| h.hist.clone())
        .unwrap_or_default();
    let split_events = snapshot
        .events
        .iter()
        .filter(|r| matches!(r.event, ObsEvent::SplitPhase { .. }))
        .count();
    let split_committed = snapshot
        .events
        .iter()
        .filter(|r| {
            matches!(
                r.event,
                ObsEvent::SplitPhase {
                    stage: RebalanceStage::Committed,
                    ..
                }
            )
        })
        .count();
    let text = snapshot.to_prometheus();

    let scrape = LiveScrape {
        wal_appends: snapshot.counter_total(names::WAL_APPENDS_TOTAL),
        batches_applied: snapshot.counter_total(names::SHARD_BATCHES_APPLIED_TOTAL),
        wal_fsyncs: snapshot.counter_total(names::WAL_FSYNCS_TOTAL),
        apply_count: apply.count,
        apply_p50_us: apply.percentile(50.0),
        apply_p99_us: apply.percentile(99.0),
        apply_shards: snapshot
            .histograms
            .iter()
            .filter(|h| h.name.name == names::SHARD_APPLY_LATENCY_US)
            .count(),
        poll_count: poll.count,
        poll_p99_us: poll.percentile(99.0),
        topk_count: serve_latency_count(&snapshot, "top_k"),
        stats_count: serve_latency_count(&snapshot, "stats"),
        split_events,
        split_committed,
        journal_events: snapshot.events.len(),
        series_counters: snapshot.counters.len(),
        series_gauges: snapshot.gauges.len(),
        series_histograms: snapshot.histograms.len(),
        exposition_lines: text.lines().count(),
        exposition_valid: exposition_is_valid(&text),
    };

    drop(client);
    drop(server);
    drop(fleet);
    let _ = std::fs::remove_dir_all(&dir);

    // Everything CI gates on, asserted here too so a local run fails with a
    // message instead of a jq exit code.
    assert!(scrape.apply_count > 0, "no apply-latency samples");
    assert!(scrape.apply_shards >= 3, "per-shard apply series missing");
    assert!(
        scrape.wal_fsyncs > 0,
        "no WAL fsyncs under FsyncPolicy::Always"
    );
    assert_eq!(
        scrape.wal_appends, scrape.batches_applied,
        "durability before visibility: every applied batch must have been \
         WAL-appended first (and nothing else may append)"
    );
    assert!(scrape.poll_count > 0, "no served polls recorded");
    assert!(
        scrape.split_committed >= 1,
        "the mid-stream split left no Committed lifecycle event"
    );
    assert!(scrape.exposition_valid, "text exposition failed validation");
    scrape
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("{cores} CPU core(s) available");
    println!("generating the partition-aligned stream ({N_UPDATES} updates)...");
    let updates = shard_aligned_stream(N_UPDATES, ALIGNMENT, SEED);

    println!("phase 1: {PASSES}+{PASSES} alternating plain/instrumented ingest passes...");
    let mut plain_min = f64::INFINITY;
    let mut instrumented_min = f64::INFINITY;
    for pass in 0..PASSES {
        plain_min = plain_min.min(timed_pass(&updates, None));
        // A fresh registry per pass: steady-state hot-path cost, not
        // amortised registration.
        let registry = Arc::new(Registry::new());
        instrumented_min = instrumented_min.min(timed_pass(&updates, Some(&registry)));
        println!(
            "  pass {pass}: plain min {plain_min:.3}s, instrumented min {instrumented_min:.3}s"
        );
    }
    let overhead_pct = (instrumented_min - plain_min) / plain_min * 100.0;

    println!("phase 2: live persistent fleet + server, split mid-stream, wire scrape...");
    let scrape = live_phase(&updates);

    let mut table = Table::new("observability overhead + live scrape", &["metric", "value"]);
    table.row(vec!["plain min s".into(), format!("{plain_min:.3}")]);
    table.row(vec![
        "instrumented min s".into(),
        format!("{instrumented_min:.3}"),
    ]);
    table.row(vec!["overhead %".into(), format!("{overhead_pct:.2}")]);
    table.row(vec!["wal appends".into(), scrape.wal_appends.to_string()]);
    table.row(vec![
        "batches applied".into(),
        scrape.batches_applied.to_string(),
    ]);
    table.row(vec!["wal fsyncs".into(), scrape.wal_fsyncs.to_string()]);
    table.row(vec!["apply p99 µs".into(), scrape.apply_p99_us.to_string()]);
    table.row(vec!["polls served".into(), scrape.poll_count.to_string()]);
    table.row(vec!["poll p99 µs".into(), scrape.poll_p99_us.to_string()]);
    table.row(vec![
        "split events".into(),
        format!(
            "{} ({} committed)",
            scrape.split_events, scrape.split_committed
        ),
    ]);
    table.row(vec![
        "exposition lines".into(),
        scrape.exposition_lines.to_string(),
    ]);
    table.print();

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"n_updates\": {N_UPDATES},\n"));
    json.push_str(&format!("  \"seed\": {SEED},\n"));
    json.push_str(&format!("  \"cpu_cores\": {cores},\n"));
    json.push_str("  \"workload\": \"shard_aligned_stream\",\n");
    json.push_str(&format!("  \"passes_per_arm\": {PASSES},\n"));
    json.push_str(&format!("  \"plain_secs_min\": {plain_min:.6},\n"));
    json.push_str(&format!(
        "  \"instrumented_secs_min\": {instrumented_min:.6},\n"
    ));
    json.push_str(&format!("  \"overhead_pct\": {overhead_pct:.3},\n"));
    json.push_str(&format!("  \"split_at\": {SPLIT_AT},\n"));
    json.push_str(&format!(
        "  \"wal_appends_total\": {},\n",
        scrape.wal_appends
    ));
    json.push_str(&format!(
        "  \"batches_applied_total\": {},\n",
        scrape.batches_applied
    ));
    json.push_str(&format!("  \"wal_fsyncs_total\": {},\n", scrape.wal_fsyncs));
    json.push_str(&format!(
        "  \"apply_latency_count\": {},\n",
        scrape.apply_count
    ));
    json.push_str(&format!("  \"apply_p50_us\": {},\n", scrape.apply_p50_us));
    json.push_str(&format!("  \"apply_p99_us\": {},\n", scrape.apply_p99_us));
    json.push_str(&format!(
        "  \"apply_latency_shards\": {},\n",
        scrape.apply_shards
    ));
    json.push_str(&format!("  \"serve_poll_count\": {},\n", scrape.poll_count));
    json.push_str(&format!(
        "  \"serve_poll_p99_us\": {},\n",
        scrape.poll_p99_us
    ));
    json.push_str(&format!("  \"serve_topk_count\": {},\n", scrape.topk_count));
    json.push_str(&format!(
        "  \"serve_stats_count\": {},\n",
        scrape.stats_count
    ));
    json.push_str(&format!(
        "  \"split_lifecycle_events\": {},\n",
        scrape.split_events
    ));
    json.push_str(&format!(
        "  \"split_committed_events\": {},\n",
        scrape.split_committed
    ));
    json.push_str(&format!(
        "  \"journal_events_total\": {},\n",
        scrape.journal_events
    ));
    json.push_str(&format!(
        "  \"series_counters\": {},\n",
        scrape.series_counters
    ));
    json.push_str(&format!("  \"series_gauges\": {},\n", scrape.series_gauges));
    json.push_str(&format!(
        "  \"series_histograms\": {},\n",
        scrape.series_histograms
    ));
    json.push_str(&format!(
        "  \"exposition_lines\": {},\n",
        scrape.exposition_lines
    ));
    json.push_str(&format!(
        "  \"exposition_valid\": {}\n",
        scrape.exposition_valid
    ));
    json.push_str("}\n");
    match std::fs::write("BENCH_obs.json", json) {
        Ok(()) => println!("wrote BENCH_obs.json"),
        Err(e) => eprintln!("failed to write BENCH_obs.json: {e}"),
    }
}
