//! Table 3: qualitative top stories for a simulated day, from a tweet-like and
//! a blog-like corpus (the paper's real corpora are not redistributable; see
//! DESIGN.md for the substitution).
//!
//! The setup follows Section 5.3: correlations are computed over the whole day
//! (no decay), edge weights are raw log-likelihood ratios retained above a 5%
//! significance level, density is AvgDegree (favouring larger stories), and
//! the resulting output-dense subgraphs are re-ranked in a diversity-aware
//! manner before presentation.
//!
//! Usage:
//!
//! ```bash
//! cargo run --release -p dyndens-bench --bin table3_stories -- [--scale 1.0]
//! ```

use dyndens_core::{DynDens, DynDensConfig};
use dyndens_density::AvgDegree;
use dyndens_stream::{rank_with_diversity, LogLikelihoodRatio, CHI2_CRITICAL_5PCT};
use dyndens_workloads::{SimulatedCorpus, TweetSimulator, TweetSimulatorConfig};

fn top_stories(corpus: &SimulatedCorpus, threshold: f64) -> Vec<(Vec<String>, f64)> {
    // Raw (non-thresholded) log-likelihood ratio weights, no decay.
    let updates = corpus.to_updates(LogLikelihoodRatio::raw(CHI2_CRITICAL_5PCT), None);
    let mut engine = DynDens::new(
        AvgDegree,
        DynDensConfig::new(threshold, 5).with_delta_it_fraction(0.05),
    );
    for u in &updates {
        engine.apply_update(*u);
    }
    let ranked = rank_with_diversity(&engine.output_dense_subgraphs(), 0.8, 6);
    ranked
        .into_iter()
        .map(|(set, density, _)| (corpus.registry.describe(set.iter()), density))
        .collect()
}

fn print_block(label: &str, stories: &[(Vec<String>, f64)]) {
    println!("\n== Table 3 ({label}) ==");
    if stories.is_empty() {
        println!("  (no story clears the threshold; lower it with a smaller --scale dataset)");
    }
    for (rank, (entities, density)) in stories.iter().enumerate() {
        println!(
            "  {}. [density {density:.2}] {}",
            rank + 1,
            entities.join(", ")
        );
    }
}

fn main() {
    let scale = std::env::args()
        .skip_while(|a| a != "--scale")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);

    let tweet_config = TweetSimulatorConfig {
        n_posts: (60_000.0 * scale) as usize,
        n_background_entities: 600,
        ..TweetSimulatorConfig::default()
    };
    let blog_config = TweetSimulatorConfig {
        n_posts: (8_000.0 * scale) as usize,
        n_background_entities: 400,
        ..TweetSimulatorConfig::blog_profile()
    };

    let tweets = TweetSimulator::new(tweet_config).generate();
    let blogs = TweetSimulator::new(blog_config).generate();

    println!(
        "simulated corpora: {} tweets, {} blog posts, planted stories: {:?}",
        tweets.posts.len(),
        blogs.posts.len(),
        dyndens_workloads::tweets::default_stories()
            .iter()
            .map(|s| s.name.clone())
            .collect::<Vec<_>>()
    );

    print_block("from tweets", &top_stories(&tweets, 1.5));
    print_block("from blog posts", &top_stories(&blogs, 1.5));

    println!("\n(Compare against the planted story scripts above: the raid, Libya, royal wedding, PSN hack and pop-culture groups should dominate, with facets merged into single stories.)");
}
