//! Figures 4(a)–4(f) and Table 2: end-to-end update processing time while
//! sweeping the density threshold `T` and the maximum cardinality `Nmax`, for
//! the three density measures on the weighted and unweighted datasets.
//!
//! Usage:
//!
//! ```bash
//! cargo run --release -p dyndens-bench --bin fig4_perf -- [--figure a|b|c|d|e|f|all] [--scale 1.0]
//! ```

use std::time::Duration;

use dyndens_bench::{run_updates, unweighted_dataset, weighted_dataset, DatasetSpec, Table};
use dyndens_core::DynDensConfig;
use dyndens_density::{AvgDegree, AvgWeight, DensityMeasure, SqrtDens};
use dyndens_graph::EdgeUpdate;

struct FigureSpec {
    id: &'static str,
    measure_name: &'static str,
    dataset: &'static str,
    thresholds: &'static [f64],
    n_maxes: &'static [usize],
}

const FIGURES: &[FigureSpec] = &[
    // Threshold grids chosen to bracket the paper's operating points for each
    // measure/dataset combination (Fig. 4(a)-(f) / Table 2).
    FigureSpec {
        id: "a",
        measure_name: "AvgWeight",
        dataset: "weighted",
        thresholds: &[0.35, 0.41, 0.5, 0.6],
        n_maxes: &[4, 5, 6, 8],
    },
    FigureSpec {
        id: "b",
        measure_name: "SqrtDens",
        dataset: "weighted",
        thresholds: &[0.5, 0.6, 0.8, 1.0],
        n_maxes: &[4, 5, 6, 8],
    },
    FigureSpec {
        id: "c",
        measure_name: "AvgDegree",
        dataset: "weighted",
        thresholds: &[0.9, 1.1, 1.7, 2.0],
        n_maxes: &[4, 5, 6, 8],
    },
    FigureSpec {
        id: "d",
        measure_name: "AvgWeight",
        dataset: "unweighted",
        thresholds: &[0.7, 0.8, 1.0],
        n_maxes: &[4, 5, 6],
    },
    FigureSpec {
        id: "e",
        measure_name: "SqrtDens",
        dataset: "unweighted",
        thresholds: &[0.8, 0.9, 1.0],
        n_maxes: &[4, 5, 6],
    },
    FigureSpec {
        id: "f",
        measure_name: "AvgDegree",
        dataset: "unweighted",
        thresholds: &[1.7, 1.9, 2.1],
        n_maxes: &[4, 5, 6],
    },
];

fn parse_args() -> (String, f64) {
    let args: Vec<String> = std::env::args().collect();
    let mut figure = "all".to_string();
    let mut scale = 1.0;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--figure" => {
                figure = args.get(i + 1).cloned().unwrap_or_else(|| "all".into());
                i += 2;
            }
            "--scale" => {
                scale = args.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(1.0);
                i += 2;
            }
            _ => i += 1,
        }
    }
    (figure, scale)
}

fn run_figure<D: DensityMeasure + Copy>(spec: &FigureSpec, measure: D, updates: &[EdgeUpdate]) {
    let mut table = Table::new(
        &format!(
            "Figure 4({}): {} density, {} dataset ({} updates)",
            spec.id,
            spec.measure_name,
            spec.dataset,
            updates.len()
        ),
        &[
            "T",
            "Nmax",
            "time_ms",
            "avg output-dense",
            "dense at end",
            "explorations",
        ],
    );
    for &t in spec.thresholds {
        for &n_max in spec.n_maxes {
            let config = DynDensConfig::new(t, n_max).with_delta_it_fraction(0.01);
            let result = run_updates(
                measure,
                config,
                updates,
                Some(Duration::from_secs(600)),
                1000,
            );
            match result {
                Some(m) => {
                    table.row(vec![
                        format!("{t}"),
                        format!("{n_max}"),
                        format!("{:.1}", m.millis()),
                        format!("{:.1}", m.avg_output_dense),
                        format!("{}", m.dense_at_end),
                        format!("{}", m.stats.explorations),
                    ]);
                }
                None => {
                    table.row(vec![
                        format!("{t}"),
                        format!("{n_max}"),
                        ">cap".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                    ]);
                }
            }
        }
    }
    table.print();
}

fn main() {
    let (figure, scale) = parse_args();
    let spec = DatasetSpec::scaled(scale);
    println!(
        "dataset scale {scale}: {} posts, {} background entities",
        spec.n_posts, spec.n_background_entities
    );
    let weighted = weighted_dataset(&spec);
    let unweighted = unweighted_dataset(&spec);
    println!(
        "weighted dataset: {} updates; unweighted dataset: {} updates",
        weighted.len(),
        unweighted.len()
    );

    for fig in FIGURES {
        if figure != "all" && figure != fig.id {
            continue;
        }
        let updates = if fig.dataset == "weighted" {
            &weighted
        } else {
            &unweighted
        };
        match fig.measure_name {
            "AvgWeight" => run_figure(fig, AvgWeight, updates),
            "SqrtDens" => run_figure(fig, SqrtDens, updates),
            "AvgDegree" => run_figure(fig, AvgDegree, updates),
            _ => unreachable!(),
        }
    }
    println!("\n(Table 2 corresponds to the 'avg output-dense' column above.)");
}
