//! Rebalance latency experiment: how long a live shard split pauses the
//! split shard, and how ingest throughput recovers once the fleet has grown,
//! on the partition-aligned 50k-update synthetic stream.
//!
//! Each trial runs a persistent 2-shard deployment, ingests a pre-split
//! window (timed), performs four online splits at fixed stream milestones —
//! slots 0, 1, 2, 3 in turn, which keeps every route-trie leaf within the
//! community-aligned depth so the final answer stays exact — and ingests a
//! post-split window (timed). The pause sample for one split is the wall
//! time of `split_shard`: the window during which updates routed to the
//! split shard park while every other shard keeps ingesting.
//!
//! Prints a table and writes a machine-readable `BENCH_rebalance.json`
//! (pause percentiles, pre/post-split throughput, recovery ratio) so the
//! rebalancing cost trajectory can be tracked across PRs. CI's
//! rebalance-smoke step parses the JSON and gates the p99 split pause.
//!
//! Run with `cargo run --release -p dyndens-bench --bin rebalance_latency`.

use std::sync::Arc;
use std::time::Instant;

use dyndens_bench::{percentile, shard_aligned_stream, Table};
use dyndens_core::DynDensConfig;
use dyndens_density::AvgWeight;
use dyndens_graph::EdgeUpdate;
use dyndens_obs::{names, Registry};
use dyndens_shard::{FsyncPolicy, PersistenceConfig, ShardConfig, ShardFn, ShardedDynDens};

const N_UPDATES: usize = 50_000;
const ALIGNMENT: usize = 8;
const SEED: u64 = 97;
const TRIALS: usize = 3;
const N_SHARDS: usize = 2;
/// Split slots 0, 1, 2, 3 in turn: one split per base slot, then one per
/// first-generation child — every leaf stays within depth 2, the
/// community-aligned bound for alignment 8 over 2 base slots.
const SPLIT_SLOTS: [usize; 4] = [0, 1, 2, 3];
/// Stream positions (updates ingested) at which the splits fire.
const SPLIT_AT: [usize; 4] = [16_000, 22_000, 28_000, 34_000];
const CHUNK: usize = 512;

fn engine_config() -> DynDensConfig {
    DynDensConfig::new(1.0, 4).with_delta_it(0.15)
}

fn shard_config() -> ShardConfig {
    ShardConfig::new(N_SHARDS)
        .with_shard_fn(ShardFn::Modulo)
        .with_max_batch(128)
        .with_channel_capacity(4096)
}

struct Trial {
    pause_ms: Vec<f64>,
    pre_ups: f64,
    post_ups: f64,
    output_dense: usize,
    final_workers: usize,
}

fn ingest_window(fleet: &mut ShardedDynDens<AvgWeight>, updates: &[EdgeUpdate]) -> f64 {
    let start = Instant::now();
    for chunk in updates.chunks(CHUNK) {
        fleet.apply_batch(chunk);
    }
    fleet.flush();
    start.elapsed().as_secs_f64()
}

fn run_trial(updates: &[EdgeUpdate], trial: usize, registry: &Arc<Registry>) -> Trial {
    let dir = std::env::temp_dir().join(format!(
        "dyndens-rebalance-bench-{}-{trial}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mut fleet = ShardedDynDens::with_persistence(
        AvgWeight,
        engine_config(),
        shard_config().with_obs(Arc::clone(registry)),
        PersistenceConfig::new(&dir).with_fsync(FsyncPolicy::Never),
    )
    .expect("persistent deployment");

    // Pre-split window: the first milestone's worth of the stream.
    let pre_secs = ingest_window(&mut fleet, &updates[..SPLIT_AT[0]]);
    let pre_ups = SPLIT_AT[0] as f64 / pre_secs;

    // Splits at fixed milestones, ingesting between them.
    let mut pause_ms = Vec::with_capacity(SPLIT_SLOTS.len());
    let mut ingested = SPLIT_AT[0];
    for (i, &slot) in SPLIT_SLOTS.iter().enumerate() {
        let start = Instant::now();
        fleet.split_shard(slot).expect("split failed");
        pause_ms.push(start.elapsed().as_secs_f64() * 1e3);
        let until = SPLIT_AT.get(i + 1).copied().unwrap_or(ingested);
        if until > ingested {
            ingest_window(&mut fleet, &updates[ingested..until]);
            ingested = until;
        }
    }

    // Post-split window: the rest of the stream, same-size comparison slice.
    let post_window = &updates[ingested..];
    let post_secs = ingest_window(&mut fleet, post_window);
    let post_ups = post_window.len() as f64 / post_secs;

    let output_dense = fleet.output_dense_count();
    let final_workers = fleet.n_shards();
    drop(fleet);
    let _ = std::fs::remove_dir_all(&dir);
    Trial {
        pause_ms,
        pre_ups,
        post_ups,
        output_dense,
        final_workers,
    }
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    pauses: &[f64],
    p50: f64,
    p99: f64,
    pre_ups: f64,
    post_ups: f64,
    output_dense: usize,
    reference_dense: usize,
    final_workers: usize,
    registry: &Registry,
) -> std::io::Result<()> {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"n_updates\": {N_UPDATES},\n"));
    json.push_str(&format!("  \"seed\": {SEED},\n"));
    json.push_str(&format!("  \"cpu_cores\": {cores},\n"));
    json.push_str("  \"workload\": \"shard_aligned_stream\",\n");
    json.push_str(&format!("  \"n_shards_initial\": {N_SHARDS},\n"));
    json.push_str(&format!("  \"trials\": {TRIALS},\n"));
    json.push_str(&format!("  \"splits_per_trial\": {},\n", SPLIT_SLOTS.len()));
    json.push_str(&format!("  \"final_workers\": {final_workers},\n"));
    let samples: Vec<String> = pauses.iter().map(|ms| format!("{ms:.3}")).collect();
    json.push_str(&format!(
        "  \"split_pause_ms\": [{}],\n",
        samples.join(", ")
    ));
    json.push_str(&format!("  \"split_pause_ms_p50\": {p50:.3},\n"));
    json.push_str(&format!("  \"split_pause_ms_p99\": {p99:.3},\n"));
    json.push_str(&format!(
        "  \"split_pause_ms_max\": {:.3},\n",
        pauses.iter().cloned().fold(0.0f64, f64::max)
    ));
    json.push_str(&format!("  \"pre_split_updates_per_sec\": {pre_ups:.1},\n"));
    json.push_str(&format!(
        "  \"post_split_updates_per_sec\": {post_ups:.1},\n"
    ));
    json.push_str(&format!(
        "  \"throughput_recovery_ratio\": {:.3},\n",
        post_ups / pre_ups
    ));
    json.push_str(&format!("  \"output_dense\": {output_dense},\n"));
    json.push_str(&format!(
        "  \"output_dense_never_split\": {reference_dense},\n"
    ));
    // Cross-check from the shared observability registry: the fleet's own
    // split counter and park→commit pause histogram, accumulated across all
    // trials. The registry pause excludes the facade's lock acquisition that
    // the wall-clock samples above include, so it reads at or below them.
    let snap = registry.snapshot();
    let pause = snap.merged_histogram(names::REBALANCE_PAUSE_US);
    json.push_str(&format!(
        "  \"registry_splits_total\": {},\n",
        snap.counter_total(names::SPLITS_TOTAL)
    ));
    json.push_str(&format!(
        "  \"registry_pause_us_p50\": {},\n",
        pause.percentile(50.0)
    ));
    json.push_str(&format!(
        "  \"registry_pause_us_p99\": {}\n",
        pause.percentile(99.0)
    ));
    json.push_str("}\n");
    std::fs::write("BENCH_rebalance.json", json)
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("{cores} CPU core(s) available");
    println!("generating the partition-aligned stream ({N_UPDATES} updates)...");
    let updates = shard_aligned_stream(N_UPDATES, ALIGNMENT, SEED);

    // Never-split reference answer: the splits must not change it.
    let reference_dense = {
        let mut reference = ShardedDynDens::new(AvgWeight, engine_config(), shard_config());
        for chunk in updates.chunks(CHUNK) {
            reference.apply_batch(chunk);
        }
        reference.output_dense_count()
    };

    // One registry across every trial: split counters and pause histograms
    // accumulate the way they would on a long-lived deployment.
    let registry = Arc::new(Registry::new());
    let trials: Vec<Trial> = (0..TRIALS)
        .map(|t| run_trial(&updates, t, &registry))
        .collect();
    let mut pauses: Vec<f64> = trials.iter().flat_map(|t| t.pause_ms.clone()).collect();
    let p50 = percentile(&mut pauses, 50.0);
    let p99 = percentile(&mut pauses, 99.0);
    let pre_ups = trials.iter().map(|t| t.pre_ups).fold(0.0f64, f64::max);
    let post_ups = trials.iter().map(|t| t.post_ups).fold(0.0f64, f64::max);

    let mut table = Table::new(
        "Rebalance latency (50k partition-aligned updates, splits 2 -> 6 workers)",
        &["trial", "pauses (ms)", "pre upd/s", "post upd/s", "workers"],
    );
    for (i, t) in trials.iter().enumerate() {
        table.row(vec![
            i.to_string(),
            t.pause_ms
                .iter()
                .map(|ms| format!("{ms:.1}"))
                .collect::<Vec<_>>()
                .join(" "),
            format!("{:.0}", t.pre_ups),
            format!("{:.0}", t.post_ups),
            t.final_workers.to_string(),
        ]);
    }
    table.print();
    println!(
        "\nsplit pause: p50 {p50:.1}ms, p99 {p99:.1}ms over {} samples; \
         throughput recovery {:.2}x",
        pauses.len(),
        post_ups / pre_ups
    );

    // The splits are community-aligned: the answer must be the never-split
    // one, in every trial.
    for (i, t) in trials.iter().enumerate() {
        assert_eq!(
            t.output_dense, reference_dense,
            "trial {i}: split run diverged from the never-split answer"
        );
        assert_eq!(t.final_workers, N_SHARDS + SPLIT_SLOTS.len());
    }

    let splits_seen = registry.snapshot().counter_total(names::SPLITS_TOTAL);
    assert_eq!(
        splits_seen as usize,
        TRIALS * SPLIT_SLOTS.len(),
        "the registry's split counter must see every split the bench ran"
    );

    match write_json(
        &pauses,
        p50,
        p99,
        pre_ups,
        post_ups,
        trials[0].output_dense,
        reference_dense,
        trials[0].final_workers,
        &registry,
    ) {
        Ok(()) => println!("wrote BENCH_rebalance.json"),
        Err(e) => eprintln!("failed to write BENCH_rebalance.json: {e}"),
    }
}
