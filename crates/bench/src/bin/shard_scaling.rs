//! Shard-scaling experiment: ingest throughput of `ShardedDynDens` at
//! 1/2/4/8 shards versus the single-threaded engine, on the partition-aligned
//! 50k-update synthetic stream.
//!
//! Latency detail comes from the shared observability registry: sharded runs
//! attach a [`Registry`] to the fleet and read the workers' own
//! `dyndens_shard_apply_latency_us` histograms (merged across shards); the
//! single-engine baseline records its per-chunk apply time into the same
//! histogram type under a `shard="single"` label, so both configurations
//! report through one sink. Sample granularity differs — per micro-batch
//! (≤ 128 updates) for workers, per 512-update chunk for the baseline — so
//! the columns are trajectories per config, not cross-config comparisons.
//!
//! Prints a table and writes a machine-readable `BENCH_shard.json`
//! (shards vs. throughput in updates/sec) so the perf trajectory can be
//! tracked across PRs.
//!
//! Run with `cargo run --release -p dyndens-bench --bin shard_scaling`.

use std::sync::Arc;
use std::time::Instant;

use dyndens_bench::{shard_aligned_stream, Table};
use dyndens_core::{DynDens, DynDensConfig};
use dyndens_density::AvgWeight;
use dyndens_graph::EdgeUpdate;
use dyndens_obs::{names, HistogramSnapshot, Registry};
use dyndens_shard::{ShardConfig, ShardFn, ShardedDynDens};

const N_UPDATES: usize = 50_000;
const ALIGNMENT: usize = 8;
const SEED: u64 = 97;
const REPETITIONS: usize = 3;

fn engine_config() -> DynDensConfig {
    DynDensConfig::new(1.0, 4).with_delta_it(0.15)
}

/// One measured configuration.
struct Measurement {
    label: String,
    shards: usize,
    best_secs: f64,
    output_dense: usize,
    /// Apply-latency histogram from the observability registry, best
    /// repetition: the workers' merged per-micro-batch series for sharded
    /// runs, the baseline's per-chunk series for the single engine.
    apply_hist: HistogramSnapshot,
    /// Largest observed view staleness during ingest: updates routed minus
    /// updates visible through the merged `StoryView`, sampled per chunk.
    seq_lag_max: u64,
}

impl Measurement {
    fn updates_per_sec(&self) -> f64 {
        N_UPDATES as f64 / self.best_secs
    }
}

fn run_single(updates: &[EdgeUpdate]) -> Measurement {
    let mut best = f64::INFINITY;
    let mut output_dense = 0;
    let mut apply_hist = HistogramSnapshot::default();
    for _ in 0..REPETITIONS {
        let registry = Registry::new();
        let hist = registry.histogram(names::SHARD_APPLY_LATENCY_US, &[("shard", "single")]);
        let mut engine = DynDens::new(AvgWeight, engine_config());
        let mut events = Vec::new();
        let start = Instant::now();
        for chunk in updates.chunks(512) {
            let t = Instant::now();
            for u in chunk {
                engine.apply_update_into(*u, &mut events);
                events.clear();
            }
            hist.record_micros(t.elapsed());
        }
        let secs = start.elapsed().as_secs_f64();
        if secs < best {
            best = secs;
            apply_hist = hist.snapshot();
        }
        output_dense = engine.output_dense_count();
    }
    Measurement {
        label: "single_engine".into(),
        shards: 0,
        best_secs: best,
        output_dense,
        apply_hist,
        // The single engine applies synchronously: a reader is never stale.
        seq_lag_max: 0,
    }
}

fn run_sharded(updates: &[EdgeUpdate], n_shards: usize) -> Measurement {
    let mut best = f64::INFINITY;
    let mut output_dense = 0;
    let mut apply_hist = HistogramSnapshot::default();
    let mut seq_lag_max = 0u64;
    for _ in 0..REPETITIONS {
        let registry = Arc::new(Registry::new());
        let mut sharded = ShardedDynDens::new(
            AvgWeight,
            engine_config(),
            ShardConfig::new(n_shards)
                .with_shard_fn(ShardFn::Modulo)
                .with_max_batch(128)
                .with_channel_capacity(4096)
                .with_obs(Arc::clone(&registry)),
        );
        let view = sharded.view();
        let mut lag_max = 0u64;
        let mut routed = 0u64;
        let start = Instant::now();
        for chunk in updates.chunks(512) {
            sharded.apply_batch(chunk);
            routed += chunk.len() as u64;
            // View staleness right after the enqueue: how far the merged
            // read path trails the routed stream.
            // Cheap probe — per-shard seq sum is a few atomic loads, so the
            // measurement does not perturb the timed ingest loop (a full
            // merged snapshot here would bias seconds against the sharded
            // configs, which the single-engine baseline never pays).
            let visible: u64 = view.per_shard_seq().iter().sum();
            lag_max = lag_max.max(routed.saturating_sub(visible));
        }
        sharded.flush();
        let secs = start.elapsed().as_secs_f64();
        if secs < best {
            best = secs;
            apply_hist = registry
                .snapshot()
                .merged_histogram(names::SHARD_APPLY_LATENCY_US);
            seq_lag_max = lag_max;
        }
        output_dense = sharded.output_dense_count();
    }
    Measurement {
        label: format!("sharded_{n_shards}"),
        shards: n_shards,
        best_secs: best,
        output_dense,
        apply_hist,
        seq_lag_max,
    }
}

fn write_json(measurements: &[Measurement], baseline_ups: f64) -> std::io::Result<()> {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"n_updates\": {N_UPDATES},\n"));
    json.push_str(&format!("  \"seed\": {SEED},\n"));
    json.push_str(&format!("  \"repetitions\": {REPETITIONS},\n"));
    json.push_str(&format!("  \"cpu_cores\": {cores},\n"));
    json.push_str("  \"workload\": \"shard_aligned_stream\",\n");
    json.push_str("  \"apply_latency_source\": \"registry_histogram\",\n");
    json.push_str("  \"results\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        let sep = if i + 1 < measurements.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"config\": \"{}\", \"shards\": {}, \"seconds\": {:.6}, \
             \"updates_per_sec\": {:.1}, \"speedup_vs_single\": {:.3}, \
             \"apply_p50_us\": {}, \"apply_p99_us\": {}, \"apply_samples\": {}, \
             \"seq_lag_max\": {}, \"output_dense\": {}}}{sep}\n",
            m.label,
            m.shards,
            m.best_secs,
            m.updates_per_sec(),
            m.updates_per_sec() / baseline_ups,
            m.apply_hist.percentile(50.0),
            m.apply_hist.percentile(99.0),
            m.apply_hist.count,
            m.seq_lag_max,
            m.output_dense,
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_shard.json", json)
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("{cores} CPU core(s) available; sharded speedups require >= shards cores");
    println!("generating the partition-aligned stream ({N_UPDATES} updates)...");
    let updates = shard_aligned_stream(N_UPDATES, ALIGNMENT, SEED);

    let mut measurements = vec![run_single(&updates)];
    for n_shards in [1usize, 2, 4, 8] {
        measurements.push(run_sharded(&updates, n_shards));
    }
    let baseline_ups = measurements[0].updates_per_sec();

    let mut table = Table::new(
        "Shard scaling (50k partition-aligned updates, best of 3)",
        &[
            "config",
            "shards",
            "seconds",
            "updates/s",
            "speedup",
            "apply p99 µs",
            "lag max",
            "output-dense",
        ],
    );
    for m in &measurements {
        table.row(vec![
            m.label.clone(),
            m.shards.to_string(),
            format!("{:.3}", m.best_secs),
            format!("{:.0}", m.updates_per_sec()),
            format!("{:.2}x", m.updates_per_sec() / baseline_ups),
            m.apply_hist.percentile(99.0).to_string(),
            m.seq_lag_max.to_string(),
            m.output_dense.to_string(),
        ]);
    }
    table.print();

    // Every configuration must have recorded real apply work through the
    // registry — a silent instrumentation regression fails here, not in a
    // dashboard weeks later.
    for m in &measurements {
        assert!(
            m.apply_hist.count > 0,
            "{}: no apply-latency samples reached the registry",
            m.label
        );
    }

    // Every configuration must report the identical answer: the stream is
    // partition-aligned, so sharding is lossless here.
    let answers: Vec<usize> = measurements.iter().map(|m| m.output_dense).collect();
    assert!(
        answers.windows(2).all(|w| w[0] == w[1]),
        "output-dense counts diverged across configurations: {answers:?}"
    );

    match write_json(&measurements, baseline_ups) {
        Ok(()) => println!("\nwrote BENCH_shard.json"),
        Err(e) => eprintln!("\nfailed to write BENCH_shard.json: {e}"),
    }
}
