//! Ablation of the `ImplicitTooDense` index optimisation (Section 5.1 /
//! Section 3.2.3): on the weighted dataset with operating points that create
//! too-dense subgraphs, the variant without the implicit representation must
//! fall back to explore-all and becomes dramatically slower.
//!
//! Usage:
//!
//! ```bash
//! cargo run --release -p dyndens-bench --bin ablation_implicit_toodense -- [--scale 1.0]
//! ```

use std::time::Duration;

use dyndens_bench::{run_updates, weighted_dataset, DatasetSpec, Table};
use dyndens_core::DynDensConfig;
use dyndens_density::AvgWeight;

fn main() {
    let scale = std::env::args()
        .skip_while(|a| a != "--scale")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    // Explore-all over all vertices is the point of this ablation; keep the
    // default dataset a bit smaller so the "without" variant terminates.
    let spec = DatasetSpec::scaled(0.5 * scale);
    let updates = weighted_dataset(&spec);
    println!("weighted dataset: {} updates", updates.len());

    // Low thresholds at moderate Nmax create too-dense subgraphs (the paper
    // uses T in [0.44, 0.5], Nmax in {9, 10}).
    let operating_points = [(0.44, 9usize), (0.5, 9), (0.44, 10), (0.5, 10)];
    // The paper caps the "without" variant at 20 minutes; the harness scales
    // the cap down together with the dataset.
    let cap = Duration::from_secs(300);

    let mut table = Table::new(
        "ImplicitTooDense ablation (AvgWeight, weighted dataset)",
        &[
            "T",
            "Nmax",
            "with ImplicitTooDense (ms)",
            "without (ms)",
            "stars created",
            "explore-all calls",
        ],
    );
    for (t, n_max) in operating_points {
        let with_cfg = DynDensConfig::new(t, n_max).with_delta_it_fraction(0.05);
        let without_cfg = with_cfg.clone().with_implicit_too_dense(false);
        let with = run_updates(AvgWeight, with_cfg, &updates, Some(cap), 1000);
        let without = run_updates(AvgWeight, without_cfg, &updates, Some(cap), 200);
        let (with_ms, stars) = match &with {
            Some(m) => (
                format!("{:.1}", m.millis()),
                format!("{}", m.stats.star_markers_created),
            ),
            None => (">cap".into(), "-".into()),
        };
        let (without_ms, explore_all) = match &without {
            Some(m) => (
                format!("{:.1}", m.millis()),
                format!("{}", m.stats.explore_all_invocations),
            ),
            None => (format!(">cap ({}s)", cap.as_secs()), "-".into()),
        };
        table.row(vec![
            format!("{t}"),
            format!("{n_max}"),
            with_ms,
            without_ms,
            stars,
            explore_all,
        ]);
    }
    table.print();
    println!("\n(The paper reports the variant without ImplicitTooDense exceeding a 20-minute cap while the full DynDens finishes in well under two minutes.)");
}
