//! Figure 4(j): effect of the MaxExplore and DegreePrioritize heuristics on a
//! synthetic near-clique workload (Section 7.3's setup: planted 10-vertex
//! groups receive 90% of the updates, magnitudes in (0, 0.1], 30% negative,
//! too-dense-inducing updates rejected).
//!
//! Usage:
//!
//! ```bash
//! cargo run --release -p dyndens-bench --bin fig4_heuristics -- [--scale 1.0]
//! ```

use std::time::Duration;

use dyndens_bench::{run_updates, Table};
use dyndens_core::DynDensConfig;
use dyndens_density::AvgWeight;
use dyndens_workloads::{SyntheticConfig, SyntheticStrategy, SyntheticWorkload};

fn main() {
    let scale: f64 = std::env::args()
        .skip_while(|a| a != "--scale")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let n_vertices = (20_000.0 * scale).max(2_000.0) as usize;
    let n_updates = (50_000.0 * scale).max(5_000.0) as usize;
    let threshold = 0.7;

    // Reject updates that would drive a planted pair into the too-dense regime
    // so the ablation isolates the exploration heuristics (as in the paper).
    let mut config = SyntheticConfig::near_clique(n_vertices, n_updates, 73);
    if let SyntheticStrategy::NearClique {
        max_pair_weight,
        groups,
        ..
    } = &mut config.strategy
    {
        *max_pair_weight = Some(threshold * 2.0);
        *groups = (n_vertices / 200).max(10);
    }
    let workload = SyntheticWorkload::generate(config);
    println!(
        "near-clique workload: {} updates, {} vertices, {} planted groups",
        workload.updates().len(),
        n_vertices,
        workload.planted_groups().len()
    );

    let variants: [(&str, bool, bool); 4] = [
        ("no heuristics", false, false),
        ("DegreePrioritize only", false, true),
        ("MaxExplore only", true, false),
        ("both heuristics", true, true),
    ];

    for &n_max in &[8usize, 9, 10] {
        let mut table = Table::new(
            &format!("Figure 4(j): heuristics ablation (AvgWeight, T = {threshold}, Nmax = {n_max}, delta_it at 40%)"),
            &["variant", "time_ms", "normalised", "explorations", "cheap explorations", "skips"],
        );
        let mut baseline_ms = None;
        for (name, max_explore, degree_prioritize) in variants {
            let engine_config = DynDensConfig::new(threshold, n_max)
                .with_delta_it_fraction(0.4)
                .with_max_explore(max_explore)
                .with_degree_prioritize(degree_prioritize);
            let m = run_updates(
                AvgWeight,
                engine_config,
                workload.updates(),
                Some(Duration::from_secs(1200)),
                5000,
            )
            .expect("run exceeded the time cap");
            let ms = m.millis();
            let baseline = *baseline_ms.get_or_insert(ms);
            table.row(vec![
                name.to_string(),
                format!("{ms:.1}"),
                format!("{:.3}", ms / baseline),
                format!("{}", m.stats.explorations),
                format!("{}", m.stats.cheap_explorations),
                format!(
                    "{}",
                    m.stats.max_explore_skips + m.stats.degree_prioritize_skips
                ),
            ]);
        }
        table.print();
    }
    println!("\n(The paper reports modest improvements, up to ~10%, from enabling the heuristics on this workload.)");
}
