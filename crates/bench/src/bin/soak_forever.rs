//! Forever-run soak: memory- and disk-bounded operation under decay.
//!
//! Drives the full post → decayed-association → sharded-engine pipeline with
//! a rolling-story workload (new stories keep being born, old ones decay to
//! nothing forever), on a cadence running the two state-reclamation passes:
//!
//! 1. **pipeline compaction** — `EdgeUpdateGenerator::compact` prunes the
//!    decayed co-occurrence tracker and emits exact cancelling updates for
//!    every pair decay has reclaimed, removing those edges from the engines
//!    through the ordinary (WAL-logged) update path;
//! 2. **shard compaction** — `ShardedDynDens::compact_below` evicts any
//!    remaining sub-floor residual edges, checkpoints every shard and prunes
//!    the WAL segments behind the checkpoint.
//!
//! The harness samples RSS, live edge count and on-disk WAL bytes at every
//! compaction; mid-soak it kills the fleet (drop without a final checkpoint)
//! and recovers it, asserting the answer is bit-identical. It writes
//! `BENCH_soak.json` with the sample series and the headline bounds CI
//! gates on: RSS and WAL growth between the half-run and full-run samples.
//!
//! The whole run is instrumented through one shared observability
//! [`Registry`] that survives the kill: the fleet's workers, WAL and
//! recovery report into it, the harness emits a
//! [`CompactionWindow`](ObsEvent::CompactionWindow) journal event per
//! reclamation pass, and the JSON carries a `registry` block of the
//! counters an operator would watch on a real forever-run.
//!
//! Run with `cargo run --release -p dyndens-bench --bin soak_forever`.
//! `SOAK_UPDATES` overrides the update target (default 2,000,000; CI's
//! smoke step uses a short run).

use std::sync::Arc;
use std::time::Instant;

use dyndens_core::DynDensConfig;
use dyndens_density::AvgWeight;
use dyndens_graph::{EdgeUpdate, VertexId, VertexSet};
use dyndens_obs::{names, ObsEvent, Registry};
use dyndens_shard::{FsyncPolicy, PersistenceConfig, ShardConfig, ShardFn, ShardedDynDens};
use dyndens_stream::{ChiSquareCorrelation, EdgeUpdateGenerator, Post};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DEFAULT_TARGET_UPDATES: u64 = 2_000_000;
const SEED: u64 = 2012;
const N_SHARDS: usize = 2;
/// Posts arrive one per simulated second.
const MEAN_LIFE_SECS: f64 = 60.0;
/// A story is posted about for this long, then falls silent forever.
const STORY_LIFE_POSTS: u64 = 600;
/// Stories run concurrently with staggered births, so each one is a genuine
/// co-mention burst against a broad background (low per-entity base rates,
/// high within-story co-occurrence — positive association).
const CONCURRENT_STORIES: u64 = 8;
const STORY_STAGGER: u64 = STORY_LIFE_POSTS / CONCURRENT_STORIES;
/// Each story spans 6 disjoint entities. Once it falls silent, its entities
/// are never mentioned again: its engine edges freeze at their last emitted
/// weight, and **only** decay-driven reclamation (tracker prune + cancelling
/// updates) can remove them — exactly the leak a forever-run without
/// compaction would accumulate.
const STORY_SPAN: u32 = 6;
/// Decayed co-occurrence counts below this are pruned from the tracker.
const TRACKER_EPSILON: f64 = 1e-4;
/// Engine-side eviction floor. The chi-square pipeline cancels dead pairs
/// with *exact* inverse deltas (weights land on 0.0 and the graph drops the
/// edge), so in this soak the floor only catches float dust and its count
/// stays at zero — the pass still matters for its checkpoint + WAL-prune
/// side. Workloads whose decay leaves sub-threshold residuals (e.g.
/// additive decayed weights) are where the floor itself evicts; see
/// `docs/RETENTION.md`.
const WEIGHT_FLOOR: f64 = 1e-6;
/// Compaction passes (and samples) per run.
const WINDOWS: u64 = 24;
/// Kill and recover the fleet at this fraction of the run.
const KILL_AT: f64 = 0.6;

fn engine_config() -> DynDensConfig {
    DynDensConfig::new(0.3, 4).with_delta_it(0.05)
}

fn shard_config(registry: &Arc<Registry>) -> ShardConfig {
    ShardConfig::new(N_SHARDS)
        .with_shard_fn(ShardFn::Modulo)
        .with_max_batch(128)
        .with_channel_capacity(4096)
        .with_obs(Arc::clone(registry))
}

fn persistence(dir: &std::path::Path) -> PersistenceConfig {
    PersistenceConfig::new(dir)
        .with_fsync(FsyncPolicy::Never)
        .with_snapshot_every_batches(64)
}

/// Resident set size in kB, from `/proc/self/status` (0 where unavailable).
fn rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines().find_map(|l| {
                l.strip_prefix("VmRSS:")?
                    .trim()
                    .trim_end_matches("kB")
                    .trim()
                    .parse()
                    .ok()
            })
        })
        .unwrap_or(0)
}

/// Total bytes of WAL segments under the persistence root.
fn wal_bytes(root: &std::path::Path) -> u64 {
    let mut total = 0;
    let mut stack = vec![root.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-"))
            {
                total += path.metadata().map(|m| m.len()).unwrap_or(0);
            }
        }
    }
    total
}

fn sorted_bits(mut sets: Vec<(VertexSet, f64)>) -> Vec<(VertexSet, u64)> {
    sets.sort_by(|a, b| a.0.cmp(&b.0));
    sets.into_iter().map(|(s, d)| (s, d.to_bits())).collect()
}

/// One post of the rolling-story workload: 3 distinct entities of one of the
/// stories alive at `t` (a story is alive for `STORY_LIFE_POSTS` after its
/// birth; births are staggered every `STORY_STAGGER` posts).
fn synth_post(t: u64, rng: &mut StdRng) -> Post {
    let newest = t / STORY_STAGGER;
    let story = newest.saturating_sub(rng.gen_range(0..CONCURRENT_STORIES)) as u32;
    let base = story * STORY_SPAN;
    let mut entities = Vec::with_capacity(3);
    while entities.len() < 3 {
        let e = VertexId(base + rng.gen_range(0..STORY_SPAN));
        if !entities.contains(&e) {
            entities.push(e);
        }
    }
    Post::new(t as f64, entities)
}

struct Sample {
    updates: u64,
    posts: u64,
    rss_kb: u64,
    edges: usize,
    wal_bytes: u64,
    tracker_pairs: usize,
    reclaimed: u64,
}

struct RecoveryOutcome {
    at_updates: u64,
    seconds: f64,
    bitexact: bool,
}

fn reopen(dir: &std::path::Path, registry: &Arc<Registry>) -> ShardedDynDens<AvgWeight> {
    ShardedDynDens::with_persistence(
        AvgWeight,
        engine_config(),
        shard_config(registry),
        persistence(dir),
    )
    .expect("reopen persistent fleet")
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    target: u64,
    samples: &[Sample],
    recovery: &RecoveryOutcome,
    reclaimed_by_decay: u64,
    evicted_by_floor: u64,
    output_dense: usize,
    elapsed_secs: f64,
    registry: &Registry,
) -> std::io::Result<()> {
    let half = &samples[samples.len() / 2];
    let last = samples.last().expect("at least one sample");
    let growth = |h: u64, f: u64| -> f64 { (f as f64 - h as f64) / (h as f64).max(1.0) * 100.0 };
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"target_updates\": {target},\n"));
    json.push_str(&format!("  \"updates_total\": {},\n", last.updates));
    json.push_str(&format!("  \"posts_total\": {},\n", last.posts));
    json.push_str(&format!("  \"seed\": {SEED},\n"));
    json.push_str(&format!("  \"n_shards\": {N_SHARDS},\n"));
    json.push_str(&format!("  \"mean_life_secs\": {MEAN_LIFE_SECS},\n"));
    json.push_str(&format!("  \"story_life_posts\": {STORY_LIFE_POSTS},\n"));
    json.push_str(&format!("  \"tracker_epsilon\": {TRACKER_EPSILON:e},\n"));
    json.push_str(&format!("  \"weight_floor\": {WEIGHT_FLOOR:e},\n"));
    json.push_str(&format!("  \"compactions\": {},\n", samples.len()));
    json.push_str(&format!(
        "  \"edges_reclaimed_by_decay\": {reclaimed_by_decay},\n"
    ));
    json.push_str(&format!(
        "  \"edges_evicted_by_floor\": {evicted_by_floor},\n"
    ));
    json.push_str(&format!("  \"edges_final\": {},\n", last.edges));
    json.push_str(&format!("  \"output_dense_final\": {output_dense},\n"));
    json.push_str(&format!("  \"elapsed_secs\": {elapsed_secs:.3},\n"));
    json.push_str(&format!(
        "  \"updates_per_sec\": {:.1},\n",
        last.updates as f64 / elapsed_secs.max(1e-9)
    ));
    json.push_str(&format!("  \"rss_half_kb\": {},\n", half.rss_kb));
    json.push_str(&format!("  \"rss_final_kb\": {},\n", last.rss_kb));
    json.push_str(&format!(
        "  \"rss_growth_pct\": {:.2},\n",
        growth(half.rss_kb, last.rss_kb)
    ));
    json.push_str(&format!("  \"wal_half_bytes\": {},\n", half.wal_bytes));
    json.push_str(&format!("  \"wal_final_bytes\": {},\n", last.wal_bytes));
    json.push_str(&format!(
        "  \"wal_growth_pct\": {:.2},\n",
        growth(half.wal_bytes, last.wal_bytes)
    ));
    json.push_str("  \"recovery\": {\n");
    json.push_str(&format!("    \"at_updates\": {},\n", recovery.at_updates));
    json.push_str(&format!("    \"seconds\": {:.6},\n", recovery.seconds));
    json.push_str(&format!("    \"bitexact\": {}\n", recovery.bitexact));
    json.push_str("  },\n");
    // The operator's view of the same run: the shared registry's counters,
    // scraped once at the end (the kill+recover kept the registry alive, so
    // these span the whole soak).
    let snap = registry.snapshot();
    let apply = snap.merged_histogram(names::SHARD_APPLY_LATENCY_US);
    json.push_str("  \"registry\": {\n");
    for (field, name) in [
        ("batches_applied_total", names::SHARD_BATCHES_APPLIED_TOTAL),
        ("updates_applied_total", names::SHARD_UPDATES_APPLIED_TOTAL),
        ("wal_appends_total", names::WAL_APPENDS_TOTAL),
        ("wal_fsyncs_total", names::WAL_FSYNCS_TOTAL),
        ("wal_rotations_total", names::WAL_ROTATIONS_TOTAL),
        (
            "wal_segments_pruned_total",
            names::WAL_SEGMENTS_PRUNED_TOTAL,
        ),
        ("checkpoints_total", names::CHECKPOINTS_TOTAL),
        ("recoveries_total", names::RECOVERIES_TOTAL),
        ("recovery_replayed_total", names::RECOVERY_REPLAYED_TOTAL),
        ("compaction_passes_total", names::COMPACTION_PASSES_TOTAL),
        (
            "compaction_evicted_edges_total",
            names::COMPACTION_EVICTED_EDGES_TOTAL,
        ),
        (
            "compaction_pruned_pairs_total",
            names::COMPACTION_PRUNED_PAIRS_TOTAL,
        ),
        (
            "compaction_cancelled_total",
            names::COMPACTION_CANCELLED_TOTAL,
        ),
    ] {
        json.push_str(&format!("    \"{field}\": {},\n", snap.counter_total(name)));
    }
    json.push_str(&format!(
        "    \"apply_p99_us\": {},\n",
        apply.percentile(99.0)
    ));
    json.push_str(&format!(
        "    \"compaction_window_events\": {}\n",
        snap.events
            .iter()
            .filter(|r| matches!(r.event, ObsEvent::CompactionWindow { .. }))
            .count()
    ));
    json.push_str("  },\n");
    json.push_str("  \"samples\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let sep = if i + 1 < samples.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"updates\": {}, \"posts\": {}, \"rss_kb\": {}, \"edges\": {}, \
             \"wal_bytes\": {}, \"tracker_pairs\": {}, \"reclaimed\": {}}}{sep}\n",
            s.updates, s.posts, s.rss_kb, s.edges, s.wal_bytes, s.tracker_pairs, s.reclaimed,
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_soak.json", json)
}

fn main() {
    let target: u64 = std::env::var("SOAK_UPDATES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_TARGET_UPDATES);
    let window = (target / WINDOWS).max(1);
    let kill_at = (target as f64 * KILL_AT) as u64;
    println!(
        "soak: {target} updates, {WINDOWS} compaction windows, kill+recover at {kill_at} updates"
    );

    let dir = std::env::temp_dir().join(format!("dyndens-soak-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // One registry for the whole soak: it deliberately outlives the mid-run
    // kill, the way a scrape endpoint outlives any single process incarnation
    // of the fleet it watches.
    let registry = Arc::new(Registry::new());
    let mut fleet = Some(
        ShardedDynDens::with_persistence(
            AvgWeight,
            engine_config(),
            shard_config(&registry),
            persistence(&dir),
        )
        .expect("persistent fleet"),
    );

    let mut generator = EdgeUpdateGenerator::new(ChiSquareCorrelation::default(), MEAN_LIFE_SECS);
    let mut rng = StdRng::seed_from_u64(SEED);
    let start = Instant::now();

    let mut updates: u64 = 0;
    let mut posts: u64 = 0;
    let mut next_window = window;
    let mut reclaimed_by_decay: u64 = 0;
    let mut evicted_by_floor: u64 = 0;
    let mut samples: Vec<Sample> = Vec::new();
    let mut recovery: Option<RecoveryOutcome> = None;
    let mut buf: Vec<EdgeUpdate> = Vec::new();
    let mut evictions: Vec<EdgeUpdate> = Vec::new();

    while updates < target {
        let post = synth_post(posts, &mut rng);
        posts += 1;
        generator.process_post_into(&post, &mut buf);
        if buf.len() >= 512 {
            updates += buf.len() as u64;
            fleet.as_mut().unwrap().apply_batch(&buf);
            buf.clear();
        }

        if updates >= next_window || updates >= target {
            next_window = updates + window;
            let f = fleet.as_mut().unwrap();
            if !buf.is_empty() {
                updates += buf.len() as u64;
                f.apply_batch(&buf);
                buf.clear();
            }
            // Reclamation pass 1: the pipeline cancels decayed-out pairs.
            let wal_before = wal_bytes(&dir);
            evictions.clear();
            let dead = generator.compact(posts as f64, TRACKER_EPSILON, &mut evictions);
            reclaimed_by_decay += dead as u64;
            registry
                .counter(names::COMPACTION_PRUNED_PAIRS_TOTAL, &[])
                .add(dead as u64);
            registry
                .counter(names::COMPACTION_CANCELLED_TOTAL, &[])
                .add(evictions.len() as u64);
            if !evictions.is_empty() {
                updates += evictions.len() as u64;
                f.apply_batch(&evictions);
            }
            // Reclamation pass 2: floor eviction + checkpoint + WAL prune.
            let floor_evicted = f.compact_below(WEIGHT_FLOOR);
            evicted_by_floor += floor_evicted;
            // One journal event per reclamation window: the generator-side
            // prune and the engine-side eviction as a single operator-visible
            // record, with the WAL bytes the checkpoint+prune gave back.
            registry.emit(ObsEvent::CompactionWindow {
                pruned_pairs: dead as u64,
                cancelled_updates: evictions.len() as u64,
                evicted_edges: floor_evicted,
                reclaimed_bytes: wal_before.saturating_sub(wal_bytes(&dir)),
            });
            samples.push(Sample {
                updates,
                posts,
                rss_kb: rss_kb(),
                edges: f.edge_count(),
                wal_bytes: wal_bytes(&dir),
                tracker_pairs: generator.tracker().pair_count(),
                reclaimed: reclaimed_by_decay + evicted_by_floor,
            });
            let s = samples.last().unwrap();
            println!(
                "  {:>10} updates  {:>8} posts  rss {:>7} kB  edges {:>5}  wal {:>8} B  \
                 pairs {:>5}  reclaimed {:>6}",
                s.updates, s.posts, s.rss_kb, s.edges, s.wal_bytes, s.tracker_pairs, s.reclaimed,
            );
        }

        if recovery.is_none() && updates >= kill_at {
            // Kill: drop the fleet with no goodbye checkpoint; the WAL has
            // everything. Recover and demand the identical answer.
            let f = fleet.as_mut().unwrap();
            f.flush();
            let want = sorted_bits(f.dense_subgraphs());
            let edges_want = f.edge_count();
            drop(fleet.take());
            let clock = Instant::now();
            let reopened = reopen(&dir, &registry);
            let seconds = clock.elapsed().as_secs_f64();
            let bitexact = sorted_bits(reopened.dense_subgraphs()) == want
                && reopened.edge_count() == edges_want;
            println!("  kill+recover at {updates} updates: {seconds:.3}s, bitexact = {bitexact}");
            recovery = Some(RecoveryOutcome {
                at_updates: updates,
                seconds,
                bitexact,
            });
            fleet = Some(reopened);
        }
    }

    let f = fleet.as_mut().unwrap();
    if !buf.is_empty() {
        f.apply_batch(&buf);
    }
    f.flush();
    let output_dense = f.output_dense_count();
    let elapsed = start.elapsed().as_secs_f64();
    let recovery = recovery.expect("kill point inside the run");

    assert!(recovery.bitexact, "mid-soak recovery was not bit-exact");
    let half = &samples[samples.len() / 2];
    let last = samples.last().unwrap();
    println!(
        "\ndone: {} updates in {elapsed:.1}s; rss {} -> {} kB, wal {} -> {} B, \
         {} edges live, {} reclaimed",
        last.updates,
        half.rss_kb,
        last.rss_kb,
        half.wal_bytes,
        last.wal_bytes,
        last.edges,
        reclaimed_by_decay + evicted_by_floor,
    );

    match write_json(
        target,
        &samples,
        &recovery,
        reclaimed_by_decay,
        evicted_by_floor,
        output_dense,
        elapsed,
        &registry,
    ) {
        Ok(()) => println!("wrote BENCH_soak.json"),
        Err(e) => eprintln!("failed to write BENCH_soak.json: {e}"),
    }

    drop(fleet);
    let _ = std::fs::remove_dir_all(&dir);
}
