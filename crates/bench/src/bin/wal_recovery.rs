//! WAL overhead and crash-recovery benchmark: ingest throughput of the
//! persistent sharded deployment versus the in-memory one, plus the time to
//! recover a crashed deployment (snapshot load + WAL tail replay), on the
//! partition-aligned 50k-update synthetic stream.
//!
//! Prints a table and writes a machine-readable `BENCH_wal.json` with the
//! headline `wal_overhead_pct` (the durability tax on ingest throughput with
//! the default OS-buffered fsync policy) and the recovery timings, so the
//! durability cost trajectory can be tracked across PRs. CI's
//! recovery-smoke step parses the JSON and fails if the overhead exceeds
//! its budget.
//!
//! Run with `cargo run --release -p dyndens-bench --bin wal_recovery`.

use std::path::PathBuf;
use std::time::Instant;

use dyndens_bench::{shard_aligned_stream, Table};
use dyndens_core::DynDensConfig;
use dyndens_density::AvgWeight;
use dyndens_graph::EdgeUpdate;
use dyndens_shard::{FsyncPolicy, PersistenceConfig, ShardConfig, ShardFn, ShardedDynDens};

const N_UPDATES: usize = 50_000;
const ALIGNMENT: usize = 8;
const SEED: u64 = 97;
const REPETITIONS: usize = 3;
const N_SHARDS: usize = 2;
const SNAPSHOT_EVERY: usize = 64;

fn engine_config() -> DynDensConfig {
    DynDensConfig::new(1.0, 4).with_delta_it(0.15)
}

fn shard_config() -> ShardConfig {
    ShardConfig::new(N_SHARDS)
        .with_shard_fn(ShardFn::Modulo)
        .with_max_batch(128)
        .with_channel_capacity(4096)
}

fn persistence(dir: &PathBuf, fsync: FsyncPolicy) -> PersistenceConfig {
    PersistenceConfig::new(dir)
        .with_fsync(fsync)
        .with_snapshot_every_batches(SNAPSHOT_EVERY)
}

struct Measurement {
    label: String,
    best_secs: f64,
    output_dense: usize,
}

impl Measurement {
    fn updates_per_sec(&self) -> f64 {
        N_UPDATES as f64 / self.best_secs
    }
}

fn ingest(deployment: &mut ShardedDynDens<AvgWeight>, updates: &[EdgeUpdate]) -> f64 {
    let start = Instant::now();
    for chunk in updates.chunks(512) {
        deployment.apply_batch(chunk);
    }
    deployment.flush();
    start.elapsed().as_secs_f64()
}

fn run_baseline(updates: &[EdgeUpdate]) -> Measurement {
    let mut best = f64::INFINITY;
    let mut output_dense = 0;
    for _ in 0..REPETITIONS {
        let mut deployment = ShardedDynDens::new(AvgWeight, engine_config(), shard_config());
        best = best.min(ingest(&mut deployment, updates));
        output_dense = deployment.output_dense_count();
    }
    Measurement {
        label: "in_memory".into(),
        best_secs: best,
        output_dense,
    }
}

fn run_persistent(updates: &[EdgeUpdate], fsync: FsyncPolicy, label: &str) -> Measurement {
    let mut best = f64::INFINITY;
    let mut output_dense = 0;
    for rep in 0..REPETITIONS {
        let dir = std::env::temp_dir().join(format!(
            "dyndens-walbench-{label}-{}-{rep}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut deployment = ShardedDynDens::with_persistence(
            AvgWeight,
            engine_config(),
            shard_config(),
            persistence(&dir, fsync),
        )
        .expect("persistent deployment");
        best = best.min(ingest(&mut deployment, updates));
        output_dense = deployment.output_dense_count();
        drop(deployment);
        let _ = std::fs::remove_dir_all(&dir);
    }
    Measurement {
        label: label.into(),
        best_secs: best,
        output_dense,
    }
}

struct Recovery {
    secs: f64,
    replayed_updates: u64,
    snapshot_seq_total: u64,
    recovered_seq_total: u64,
    output_dense: usize,
}

/// Ingest the full stream into a persistent deployment, "crash" it (drop
/// without a final checkpoint), then measure cold recovery.
fn run_recovery(updates: &[EdgeUpdate]) -> Recovery {
    let dir = std::env::temp_dir().join(format!("dyndens-walbench-rec-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let mut doomed = ShardedDynDens::with_persistence(
            AvgWeight,
            engine_config(),
            shard_config(),
            persistence(&dir, FsyncPolicy::Never),
        )
        .expect("persistent deployment");
        ingest(&mut doomed, updates);
    }
    let start = Instant::now();
    let recovered = ShardedDynDens::with_persistence(
        AvgWeight,
        engine_config(),
        shard_config(),
        persistence(&dir, FsyncPolicy::Never),
    )
    .expect("recovery");
    let secs = start.elapsed().as_secs_f64();
    let reports = recovered.recovery_reports().to_vec();
    let output_dense = recovered.output_dense_count();
    drop(recovered);
    let _ = std::fs::remove_dir_all(&dir);
    Recovery {
        secs,
        replayed_updates: reports.iter().map(|r| r.replayed_updates).sum(),
        snapshot_seq_total: reports.iter().map(|r| r.snapshot_seq).sum(),
        recovered_seq_total: reports.iter().map(|r| r.recovered_seq).sum(),
        output_dense,
    }
}

fn write_json(
    measurements: &[Measurement],
    overhead_pct: f64,
    fsync_overhead_pct: f64,
    recovery: &Recovery,
) -> std::io::Result<()> {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"n_updates\": {N_UPDATES},\n"));
    json.push_str(&format!("  \"seed\": {SEED},\n"));
    json.push_str(&format!("  \"repetitions\": {REPETITIONS},\n"));
    json.push_str(&format!("  \"cpu_cores\": {cores},\n"));
    json.push_str(&format!("  \"n_shards\": {N_SHARDS},\n"));
    json.push_str(&format!(
        "  \"snapshot_every_batches\": {SNAPSHOT_EVERY},\n"
    ));
    json.push_str("  \"workload\": \"shard_aligned_stream\",\n");
    json.push_str(&format!("  \"wal_overhead_pct\": {overhead_pct:.2},\n"));
    json.push_str(&format!(
        "  \"wal_fsync_always_overhead_pct\": {fsync_overhead_pct:.2},\n"
    ));
    json.push_str("  \"results\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        let sep = if i + 1 < measurements.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"config\": \"{}\", \"seconds\": {:.6}, \"updates_per_sec\": {:.1}, \
             \"output_dense\": {}}}{sep}\n",
            m.label,
            m.best_secs,
            m.updates_per_sec(),
            m.output_dense,
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"recovery\": {\n");
    json.push_str(&format!("    \"seconds\": {:.6},\n", recovery.secs));
    json.push_str(&format!(
        "    \"replayed_updates\": {},\n",
        recovery.replayed_updates
    ));
    json.push_str(&format!(
        "    \"snapshot_seq_total\": {},\n",
        recovery.snapshot_seq_total
    ));
    json.push_str(&format!(
        "    \"recovered_seq_total\": {},\n",
        recovery.recovered_seq_total
    ));
    json.push_str(&format!(
        "    \"recovered_updates_per_sec\": {:.1}\n",
        recovery.recovered_seq_total as f64 / recovery.secs.max(1e-9)
    ));
    json.push_str("  }\n}\n");
    std::fs::write("BENCH_wal.json", json)
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("{cores} CPU core(s) available");
    println!("generating the partition-aligned stream ({N_UPDATES} updates)...");
    let updates = shard_aligned_stream(N_UPDATES, ALIGNMENT, SEED);

    let baseline = run_baseline(&updates);
    let wal = run_persistent(&updates, FsyncPolicy::Never, "wal_buffered");
    let wal_fsync = run_persistent(&updates, FsyncPolicy::Always, "wal_fsync_always");
    let recovery = run_recovery(&updates);

    // Durability must not change the answer.
    assert_eq!(
        baseline.output_dense, wal.output_dense,
        "WAL deployment diverged from the in-memory answer"
    );
    assert_eq!(
        baseline.output_dense, recovery.output_dense,
        "recovered deployment diverged from the in-memory answer"
    );
    assert_eq!(
        recovery.recovered_seq_total, N_UPDATES as u64,
        "recovery lost updates"
    );

    let overhead =
        |m: &Measurement| (1.0 - m.updates_per_sec() / baseline.updates_per_sec()) * 100.0;
    let overhead_pct = overhead(&wal);
    let fsync_overhead_pct = overhead(&wal_fsync);

    let mut table = Table::new(
        "WAL overhead & recovery (50k partition-aligned updates, best of 3)",
        &["config", "seconds", "updates/s", "overhead", "output-dense"],
    );
    for m in [&baseline, &wal, &wal_fsync] {
        table.row(vec![
            m.label.clone(),
            format!("{:.3}", m.best_secs),
            format!("{:.0}", m.updates_per_sec()),
            format!("{:+.1}%", overhead(m)),
            m.output_dense.to_string(),
        ]);
    }
    table.print();
    println!(
        "\nrecovery: {:.3}s for {} updates ({} replayed from the WAL tail, \
         {} covered by snapshots)",
        recovery.secs,
        recovery.recovered_seq_total,
        recovery.replayed_updates,
        recovery.snapshot_seq_total,
    );

    match write_json(
        &[baseline, wal, wal_fsync],
        overhead_pct,
        fsync_overhead_pct,
        &recovery,
    ) {
        Ok(()) => println!("wrote BENCH_wal.json"),
        Err(e) => eprintln!("failed to write BENCH_wal.json: {e}"),
    }
}
