//! Table 4 and Figures 6(a)–6(d): dynamic threshold adjustment on the
//! synthetic graphs (random, edgePreferential, nodePreferential,
//! nodePreferentialBoolean at two sizes).
//!
//! * Table 4 — number of subgraphs stored in the index at each threshold.
//! * Fig. 6(a)/(c) — threshold *increase* (0.8 → T), time normalised to a full
//!   recomputation and raw milliseconds.
//! * Fig. 6(b)/(d) — threshold *decrease* (1.0 → T), likewise.
//!
//! Usage:
//!
//! ```bash
//! cargo run --release -p dyndens-bench --bin table4_fig6_threshold -- \
//!     [--mode table4|increase|decrease|all] [--scale 1.0]
//! ```

use std::time::{Duration, Instant};

use dyndens_baselines::recompute;
use dyndens_bench::Table;
use dyndens_core::{DynDens, DynDensConfig};
use dyndens_density::AvgWeight;
use dyndens_workloads::{SyntheticConfig, SyntheticWorkload};

struct GraphSpec {
    name: &'static str,
    config: SyntheticConfig,
}

fn graph_specs(scale: f64) -> Vec<GraphSpec> {
    // The paper uses 249K-node/750K-update and 500K-node/1.5M-update graphs;
    // the harness defaults to a laptop-friendly scale (grow with --scale).
    let small_n = (25_000.0 * scale).max(2_000.0) as usize;
    let large_n = small_n * 2;
    let small_u = small_n * 3;
    let large_u = large_n * 3;
    vec![
        GraphSpec {
            name: "Random-S",
            config: SyntheticConfig::random(small_n, small_u, 1),
        },
        GraphSpec {
            name: "EdgePref-S",
            config: SyntheticConfig::edge_preferential(small_n, small_u, 2),
        },
        GraphSpec {
            name: "NodePref-S",
            config: SyntheticConfig::node_preferential(small_n, small_u, 3),
        },
        GraphSpec {
            name: "NodePrefBool-S",
            config: SyntheticConfig::node_preferential_boolean(small_n, small_u, 4),
        },
        GraphSpec {
            name: "Random-L",
            config: SyntheticConfig::random(large_n, large_u, 5),
        },
        GraphSpec {
            name: "EdgePref-L",
            config: SyntheticConfig::edge_preferential(large_n, large_u, 6),
        },
        GraphSpec {
            name: "NodePref-L",
            config: SyntheticConfig::node_preferential(large_n, large_u, 7),
        },
        GraphSpec {
            name: "NodePrefBool-L",
            config: SyntheticConfig::node_preferential_boolean(large_n, large_u, 8),
        },
    ]
}

fn engine_config(threshold: f64) -> DynDensConfig {
    DynDensConfig::new(threshold, 5).with_delta_it_fraction(0.3)
}

fn build_engine(workload: &SyntheticWorkload, threshold: f64) -> (DynDens<AvgWeight>, Duration) {
    let mut engine = DynDens::with_vertex_capacity(
        AvgWeight,
        engine_config(threshold),
        workload.config().n_vertices,
    );
    let start = Instant::now();
    for u in workload.updates() {
        engine.apply_update(*u);
    }
    (engine, start.elapsed())
}

fn table4(specs: &[GraphSpec]) {
    let thresholds = [0.8, 0.85, 0.9, 0.95, 1.0];
    let mut table = Table::new(
        "Table 4: subgraphs stored in the index at each threshold",
        &["graph", "T", "stored subgraphs"],
    );
    for spec in specs {
        let workload = SyntheticWorkload::generate(spec.config.clone());
        for &t in &thresholds {
            let (engine, _) = build_engine(&workload, t);
            table.row(vec![
                spec.name.to_string(),
                format!("{t}"),
                format!("{}", engine.dense_count()),
            ]);
        }
    }
    table.print();
}

fn threshold_change(specs: &[GraphSpec], increase: bool) {
    let (label, start_t, targets): (&str, f64, Vec<f64>) = if increase {
        ("increase (Fig. 6(a)/(c))", 0.8, vec![0.85, 0.9, 0.95, 1.0])
    } else {
        ("decrease (Fig. 6(b)/(d))", 1.0, vec![0.95, 0.9, 0.85, 0.8])
    };
    let mut table = Table::new(
        &format!("Figure 6 threshold {label}: incremental update vs DynDensRecompute"),
        &[
            "graph",
            "T_old -> T_new",
            "update_ms",
            "recompute_ms",
            "normalised (update/recompute)",
        ],
    );
    for spec in specs {
        let workload = SyntheticWorkload::generate(spec.config.clone());
        let (base_engine, _) = build_engine(&workload, start_t);
        for &target in &targets {
            // Incremental adjustment from a clone of the base engine.
            let mut engine = base_engine.clone();
            let start = Instant::now();
            engine.set_output_threshold(target);
            let update_time = start.elapsed();

            // Full recomputation at the target threshold (replaying the final
            // edge weights as updates).
            let start = Instant::now();
            let rebuilt = recompute(AvgWeight, engine_config(target), base_engine.graph());
            let recompute_time = start.elapsed();

            // Sanity: both report the same number of output-dense subgraphs
            // (up to the implicit representation).
            let a = engine.output_dense_count();
            let b = rebuilt.output_dense_count();
            debug_assert!(
                a == b || engine.index().star_count() + rebuilt.index().star_count() > 0,
                "mismatch {a} vs {b}"
            );

            table.row(vec![
                spec.name.to_string(),
                format!("{start_t} -> {target}"),
                format!("{:.1}", update_time.as_secs_f64() * 1e3),
                format!("{:.1}", recompute_time.as_secs_f64() * 1e3),
                format!(
                    "{:.3}",
                    update_time.as_secs_f64() / recompute_time.as_secs_f64().max(1e-9)
                ),
            ]);
        }
    }
    table.print();
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mode = args
        .iter()
        .position(|a| a == "--mode")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "all".into());
    let scale = args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);

    let specs = graph_specs(scale);
    println!(
        "synthetic graphs: {} configurations, up to {} vertices",
        specs.len(),
        specs.iter().map(|s| s.config.n_vertices).max().unwrap()
    );

    if mode == "table4" || mode == "all" {
        table4(&specs);
    }
    if mode == "increase" || mode == "all" {
        threshold_change(&specs, true);
    }
    if mode == "decrease" || mode == "all" {
        threshold_change(&specs, false);
    }
}
