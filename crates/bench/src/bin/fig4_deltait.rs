//! Figure 4(g): the effect of the `delta_it` parameter on processing time
//! (the space/time trade-off between maintaining more dense subgraphs and
//! performing more exploration iterations per update).
//!
//! Usage:
//!
//! ```bash
//! cargo run --release -p dyndens-bench --bin fig4_deltait -- [--scale 1.0]
//! ```

use std::time::Duration;

use dyndens_bench::{run_updates, unweighted_dataset, DatasetSpec, Table};
use dyndens_core::DynDensConfig;
use dyndens_density::AvgWeight;

fn main() {
    let scale = std::env::args()
        .skip_while(|a| a != "--scale")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let spec = DatasetSpec::scaled(scale);
    let updates = unweighted_dataset(&spec);
    println!("unweighted dataset: {} updates", updates.len());

    // The paper sweeps delta_it over its full validity range (normalised to
    // the maximum value) for Nmax = 10 and several thresholds.
    let fractions = [0.01, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 0.99];
    let thresholds = [0.8, 0.9, 1.0];
    let n_max = 10;

    let mut table = Table::new(
        "Figure 4(g): effect of delta_it (AvgWeight, unweighted dataset, Nmax = 10)",
        &[
            "T",
            "delta_it / max",
            "time_ms",
            "dense at end",
            "explorations",
            "max-explore skips",
        ],
    );
    for &t in &thresholds {
        for &f in &fractions {
            let config = DynDensConfig::new(t, n_max).with_delta_it_fraction(f);
            match run_updates(
                AvgWeight,
                config,
                &updates,
                Some(Duration::from_secs(600)),
                1000,
            ) {
                Some(m) => {
                    table.row(vec![
                        format!("{t}"),
                        format!("{f}"),
                        format!("{:.1}", m.millis()),
                        format!("{}", m.dense_at_end),
                        format!("{}", m.stats.explorations),
                        format!("{}", m.stats.max_explore_skips),
                    ]);
                }
                None => {
                    table.row(vec![
                        format!("{t}"),
                        format!("{f}"),
                        ">cap".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                    ]);
                }
            }
        }
    }
    table.print();
    println!("\n(The paper observes a local optimum in delta_it: larger values maintain more subgraphs but explore less.)");
}
