//! The backend matrix: every pluggable maintenance backend driven through
//! every workload in the scenario library, measured and judged in one run.
//!
//! Per backend × workload, the bench reports:
//!
//! * **ingest rate** — wall-clock updates/sec through a persistent 2-shard
//!   fleet of that backend (WAL + cadence checkpoints on, the deployment
//!   shape the backends compete under);
//! * **snapshot bytes** — the single-engine checkpoint size at end of
//!   stream, the backend's state-footprint proxy;
//! * **recovery time** — wall-clock milliseconds to reopen the killed
//!   persistent fleet (newest snapshots + WAL tail replay);
//! * **quality ratio** — the top-q density ratio against the exact DynDens
//!   referee ([`top_q_density_ratio`](dyndens_workloads::oracle::top_q_density_ratio));
//! * **the harness verdict** — the cross-backend differential oracle's full
//!   run: sharded/recovery/rebalance/serve deployment legs (bit-exact
//!   against a single engine of the same backend) plus the `quality` leg
//!   under the backend's declared comparison mode (bit-exact for `dyndens`
//!   and for `recompute` at rebuild boundaries, density ratio >= 0.8 for
//!   `topk-peeling`).
//!
//! Prints a table and writes `BENCH_backends.json` with one row per
//! backend × workload; CI's backend-matrix step gates on every row having
//! passed, on `recompute` rows carrying `quality_ratio == 1`, and on
//! `topk-peeling` rows clearing the 0.8 bound.
//!
//! Env knobs: `BACKEND_UPDATES` (default 8000) scales every stream.
//!
//! Run with `cargo run --release -p dyndens-bench --bin backend_matrix`.

use std::path::PathBuf;
use std::time::Instant;

use dyndens_baselines::{RecomputeBlueprint, TopKPeelingBlueprint};
use dyndens_bench::Table;
use dyndens_core::{DynDensBlueprint, EngineBlueprint, MaintenanceEngine};
use dyndens_density::AvgWeight;
use dyndens_shard::{FsyncPolicy, PersistenceConfig, ShardedFleet};
use dyndens_workloads::oracle::{engine_config, shard_config};
use dyndens_workloads::{
    AdversarialSkew, AlignedCommunities, Backend, BackendReport, CompareMode, DocCorpus,
    FlashCrowd, GeoPartitioned, Oracle, Workload, ALL_BACKENDS,
};

const N_SHARDS: usize = 2;
const CHUNK: usize = 512;

struct Row {
    backend: &'static str,
    workload: String,
    n_updates: usize,
    updates_per_sec: f64,
    snapshot_bytes: usize,
    recovery_ms: f64,
    report: BackendReport,
}

fn temp_dir(backend: Backend, workload: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dyndens-backend-matrix-{}-{workload}-{}",
        backend.kind(),
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn measure_with<B: EngineBlueprint>(
    blueprint: B,
    backend: Backend,
    workload: &dyn Workload,
) -> Row {
    let updates = workload.updates();
    let dir = temp_dir(backend, workload.name());
    let persistence = || {
        PersistenceConfig::new(&dir)
            .with_fsync(FsyncPolicy::Never)
            .with_snapshot_every_batches(8)
    };

    // Ingest rate through a persistent fleet, killed at end of stream.
    let start = Instant::now();
    {
        let mut fleet = ShardedFleet::with_backend_persistence(
            blueprint.clone(),
            shard_config(N_SHARDS),
            persistence(),
        )
        .expect("fresh persistent deployment");
        for chunk in updates.chunks(CHUNK) {
            fleet.apply_batch(chunk);
        }
        fleet.flush();
        // Dropping without shutdown is the kill.
    }
    let ingest_secs = start.elapsed().as_secs_f64();

    // Recovery time: reopen the killed directory.
    let recovery_started = Instant::now();
    let recovered = ShardedFleet::with_backend_persistence(
        blueprint.clone(),
        shard_config(N_SHARDS),
        persistence(),
    )
    .expect("recovery deployment");
    let recovery_ms = recovery_started.elapsed().as_secs_f64() * 1e3;
    drop(recovered);
    let _ = std::fs::remove_dir_all(&dir);

    // State footprint: the single-engine checkpoint size at end of stream.
    let mut single = blueprint.fresh();
    let mut events = Vec::new();
    for u in &updates {
        single.apply_update_into(*u, &mut events);
        events.clear();
    }
    let snapshot_bytes = single.snapshot().len();

    // The harness verdict runs on fresh deployments, independent of the
    // measured fleet above.
    let report = Oracle::new(workload).run_backend(backend);

    Row {
        backend: backend.kind(),
        workload: report.workload.clone(),
        n_updates: updates.len(),
        updates_per_sec: updates.len() as f64 / ingest_secs,
        snapshot_bytes,
        recovery_ms,
        report,
    }
}

fn measure(backend: Backend, workload: &dyn Workload) -> Row {
    let config = engine_config();
    match backend {
        Backend::DynDens => {
            measure_with(DynDensBlueprint::new(AvgWeight, config), backend, workload)
        }
        Backend::Recompute => measure_with(
            RecomputeBlueprint::new(AvgWeight, config, 1),
            backend,
            workload,
        ),
        Backend::TopKPeeling => measure_with(
            TopKPeelingBlueprint::new(AvgWeight, config, 4),
            backend,
            workload,
        ),
    }
}

fn mode_str(mode: CompareMode) -> String {
    match mode {
        CompareMode::BitExact => "bit-exact".to_string(),
        CompareMode::DensityRatio(bound) => format!("density-ratio>={bound}"),
    }
}

fn json_row(row: &Row) -> String {
    let legs: Vec<String> = row
        .report
        .legs
        .iter()
        .map(|l| {
            format!(
                "          {{\"leg\": \"{}\", \"passed\": {}}}",
                l.leg, l.bit_exact
            )
        })
        .collect();
    format!(
        "        \"{}\": {{\n          \"n_updates\": {},\n          \"updates_per_sec\": {:.1},\n          \
         \"snapshot_bytes\": {},\n          \"recovery_ms\": {:.2},\n          \
         \"output_dense\": {},\n          \"quality_ratio\": {:.6},\n          \
         \"star_markers\": {},\n          \"passed\": {},\n          \"legs\": [\n{}\n          ]\n        }}",
        row.workload,
        row.n_updates,
        row.updates_per_sec,
        row.snapshot_bytes,
        row.recovery_ms,
        row.report.output_dense,
        row.report.quality_ratio,
        row.report.star_markers,
        row.report.passed(),
        legs.join(",\n")
    )
}

fn main() {
    let n_updates: usize = std::env::var("BACKEND_UPDATES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(8_000);
    // Documents lower to ~6 pair-updates each; size the corpus to match the
    // other streams' update volume.
    let n_docs = (n_updates / 6).max(100);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("{cores} CPU core(s) available, {n_updates} updates per workload");

    let aligned = AlignedCommunities::new(n_updates, 2012);
    let flash = FlashCrowd::new(n_updates, 2026);
    let skew = AdversarialSkew::new(n_updates, 2026);
    let docs = DocCorpus::new(n_docs, 2026);
    let geo = GeoPartitioned::new(n_updates, 2026);
    let workloads: [&dyn Workload; 5] = [&aligned, &flash, &skew, &docs, &geo];

    let mut rows: Vec<Row> = Vec::with_capacity(ALL_BACKENDS.len() * workloads.len());
    for backend in ALL_BACKENDS {
        for workload in workloads {
            rows.push(measure(backend, workload));
        }
    }

    let mut table = Table::new(
        "Backend matrix (persistent 2-shard fleets, full differential harness)",
        &[
            "backend", "workload", "upd/s", "snap KiB", "rec ms", "dense", "quality", "passed",
        ],
    );
    for row in &rows {
        table.row(vec![
            row.backend.to_string(),
            row.workload.clone(),
            format!("{:.0}", row.updates_per_sec),
            format!("{:.1}", row.snapshot_bytes as f64 / 1024.0),
            format!("{:.1}", row.recovery_ms),
            row.report.output_dense.to_string(),
            format!("{:.3}", row.report.quality_ratio),
            row.report.passed().to_string(),
        ]);
    }
    table.print();

    for row in &rows {
        row.report.assert_passed();
    }

    let mut backend_blocks: Vec<String> = Vec::new();
    for backend in ALL_BACKENDS {
        let workload_rows: Vec<String> = rows
            .iter()
            .filter(|r| r.backend == backend.kind())
            .map(json_row)
            .collect();
        backend_blocks.push(format!(
            "    \"{}\": {{\n      \"mode\": \"{}\",\n      \"workloads\": {{\n{}\n      }}\n    }}",
            backend.kind(),
            mode_str(backend.compare_mode()),
            workload_rows.join(",\n")
        ));
    }
    let json = format!(
        "{{\n  \"n_updates\": {n_updates},\n  \"cpu_cores\": {cores},\n  \"n_shards\": \
         {N_SHARDS},\n  \"backends\": {{\n{}\n  }}\n}}\n",
        backend_blocks.join(",\n")
    );
    match std::fs::write("BENCH_backends.json", json) {
        Ok(()) => println!("wrote BENCH_backends.json"),
        Err(e) => eprintln!("failed to write BENCH_backends.json: {e}"),
    }
}
