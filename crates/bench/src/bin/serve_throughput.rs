//! Serving-layer benchmark: request throughput and poll latency of the
//! `dyndens-serve` TCP server under concurrent clients, while a live ingest
//! thread streams the partition-aligned 50k-update workload through the
//! sharded fleet underneath.
//!
//! Each client thread runs a delta-following [`Mirror`] loop (the realistic
//! read pattern: `Poll` with a per-shard cursor) and issues a `TopK` read
//! every 16th request. Latency comes from the server's own observability
//! registry — the per-request-type `dyndens_serve_request_latency_us`
//! histograms — scraped over the wire with a `Metrics` request at the end of
//! the run, so the bench measures exactly what operators see. The JSON
//! reports p50/p99 along with requests/sec, so the serving cost trajectory
//! can be tracked across PRs next to `BENCH_shard.json` and `BENCH_wal.json`.
//!
//! A second phase measures subscriber fan-in: `SERVE_SUBSCRIBERS` concurrent
//! `Subscribe` registrations (default 10k, capped by the fd limit) against
//! the same live server, gated on every subscriber receiving at least one
//! push. Fan-out latency, push totals, the subscriber gauge and the server's
//! resident set are reported under `"fan_in"` in the JSON.
//!
//! Run with `cargo run --release -p dyndens-bench --bin serve_throughput`.
//! Writes `BENCH_serve.json`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use dyndens_bench::{shard_aligned_stream, Table};
use dyndens_core::DynDensConfig;
use dyndens_density::AvgWeight;
use dyndens_obs::{names, HistogramSnapshot, ObsHandle, Registry, RegistrySnapshot};
use dyndens_serve::{Client, Mirror, StoryServer};
use dyndens_shard::{ShardConfig, ShardFn, ShardedDynDens};

const N_UPDATES: usize = 50_000;
const ALIGNMENT: usize = 8;
const SEED: u64 = 2012;
const N_CLIENTS: usize = 4;
const TOPK_EVERY: usize = 16;
const INGEST_PASSES: usize = 1;

struct ClientReport {
    requests: u64,
    events_applied: u64,
    resyncs: u64,
}

fn client_loop(addr: std::net::SocketAddr, stop: Arc<AtomicBool>) -> ClientReport {
    let mut client = Client::builder().connect(addr).expect("client connect");
    let mut follower = Mirror::new();
    let mut requests = 0u64;
    while !stop.load(Ordering::Relaxed) {
        if requests % TOPK_EVERY as u64 == TOPK_EVERY as u64 - 1 {
            client.top_k(8).expect("topk request");
        } else {
            follower.poll(&mut client).expect("poll request");
        }
        requests += 1;
    }
    ClientReport {
        requests,
        events_applied: follower.events_applied(),
        resyncs: follower.resyncs(),
    }
}

/// Resident set size in kB, from `/proc/self/status` (0 where unavailable).
/// The server runs in-process, so this is the serving process's footprint.
fn rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines().find_map(|l| {
                l.strip_prefix("VmRSS:")?
                    .trim()
                    .trim_end_matches("kB")
                    .trim()
                    .parse()
                    .ok()
            })
        })
        .unwrap_or(0)
}

/// The soft open-file limit, from `/proc/self/limits` (None where
/// unavailable). Each subscriber costs three fds: the client's reader and
/// writer handles (a `try_clone`) plus the server-side connection.
fn max_open_files() -> Option<u64> {
    let limits = std::fs::read_to_string("/proc/self/limits").ok()?;
    let line = limits.lines().find(|l| l.starts_with("Max open files"))?;
    line.split_whitespace().nth(3)?.parse().ok()
}

/// The server-side latency histogram for one request type, out of the
/// scraped registry snapshot.
fn request_latency(snapshot: &RegistrySnapshot, kind: &str) -> HistogramSnapshot {
    snapshot
        .histograms
        .iter()
        .find(|h| {
            h.name.name == names::SERVE_REQUEST_LATENCY_US && h.name.label("type") == Some(kind)
        })
        .map(|h| h.hist.clone())
        .unwrap_or_default()
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("{cores} CPU core(s) available");
    println!("generating the partition-aligned stream ({N_UPDATES} updates)...");
    let updates = shard_aligned_stream(N_UPDATES, ALIGNMENT, SEED);
    let n_shards = 2;

    let registry = Arc::new(Registry::new());
    let mut fleet = ShardedDynDens::new(
        AvgWeight,
        DynDensConfig::new(1.0, 4).with_delta_it(0.15),
        ShardConfig::new(n_shards)
            .with_shard_fn(ShardFn::Modulo)
            .with_max_batch(128)
            .with_channel_capacity(4096)
            .with_obs(Arc::clone(&registry)),
    );
    let server = StoryServer::bind_with_obs(
        "127.0.0.1:0",
        fleet.view(),
        ObsHandle::new(Arc::clone(&registry)),
    )
    .expect("server bind");
    let addr = server.local_addr();
    println!("story server on {addr}, {N_CLIENTS} concurrent clients, live ingest underneath");

    let stop = Arc::new(AtomicBool::new(false));
    let clients: Vec<_> = (0..N_CLIENTS)
        .map(|_| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || client_loop(addr, stop))
        })
        .collect();

    // The live stream: the full workload, INGEST_PASSES times, while the
    // clients hammer the server. (Weights accumulate across passes; only
    // serving cost is measured here, ingest throughput has its own bench.)
    let bench_start = Instant::now();
    for _ in 0..INGEST_PASSES {
        for chunk in updates.chunks(512) {
            fleet.apply_batch(chunk);
        }
    }
    fleet.flush();
    let ingest_secs = bench_start.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);
    let reports: Vec<ClientReport> = clients
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect();
    let duration_secs = bench_start.elapsed().as_secs_f64();

    // Scrape the server's registry over the wire: the same `Metrics` request
    // an operator's collector would issue, against the live server.
    let snapshot = Client::builder()
        .connect(addr)
        .expect("scrape connect")
        .metrics()
        .expect("metrics scrape");
    let requests_total: u64 = reports.iter().map(|r| r.requests).sum();
    let served_total = snapshot.counter_total(names::SERVE_REQUESTS_TOTAL);
    assert!(
        served_total >= requests_total,
        "the server's request counter ({served_total}) trails the clients' own \
         ledger ({requests_total})"
    );
    let events_applied: u64 = reports.iter().map(|r| r.events_applied).sum();
    let resyncs: u64 = reports.iter().map(|r| r.resyncs).sum();
    let poll_hist = request_latency(&snapshot, "poll");
    let polls_total = poll_hist.count;
    let p50 = poll_hist.percentile(50.0) as f64 / 1000.0;
    let p99 = poll_hist.percentile(99.0) as f64 / 1000.0;
    let topk_hist = request_latency(&snapshot, "top_k");
    let requests_per_sec = requests_total as f64 / duration_secs;

    let mut table = Table::new(
        "serve throughput (live 50k-update stream, concurrent clients)",
        &["metric", "value"],
    );
    table.row(vec!["clients".into(), N_CLIENTS.to_string()]);
    table.row(vec!["duration s".into(), format!("{duration_secs:.3}")]);
    table.row(vec!["requests".into(), requests_total.to_string()]);
    table.row(vec!["requests/s".into(), format!("{requests_per_sec:.0}")]);
    table.row(vec![
        "poll p50 µs".into(),
        poll_hist.percentile(50.0).to_string(),
    ]);
    table.row(vec![
        "poll p99 µs".into(),
        poll_hist.percentile(99.0).to_string(),
    ]);
    table.row(vec![
        "topk p99 µs".into(),
        topk_hist.percentile(99.0).to_string(),
    ]);
    table.row(vec![
        "delta events applied".into(),
        events_applied.to_string(),
    ]);
    table.row(vec!["resyncs".into(), resyncs.to_string()]);
    table.print();

    let served_seq: u64 = fleet.view().per_shard_seq().iter().sum();
    assert_eq!(
        served_seq,
        (N_UPDATES * INGEST_PASSES) as u64,
        "the served view must reflect every ingested update"
    );

    // ---- subscriber fan-in phase ----
    // Thousands of concurrent `Subscribe` registrations against the same
    // live server. Every subscriber boots with an empty cursor against the
    // fully-ingested view, so the catch-up push alone guarantees each one
    // at least one push; a live chunk afterwards exercises the fan-out path
    // while they are all registered.
    let n_subs_requested: usize = std::env::var("SERVE_SUBSCRIBERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);
    let fd_budget = max_open_files()
        .map(|n| (n.saturating_sub(256) / 3) as usize)
        .unwrap_or(n_subs_requested);
    let n_subs = n_subs_requested.min(fd_budget.max(1));
    if n_subs < n_subs_requested {
        println!("capping subscribers at {n_subs} of {n_subs_requested} (fd limit)");
    }
    println!("fan-in phase: registering {n_subs} subscribers...");
    let fan_start = Instant::now();
    let mut subs = Vec::with_capacity(n_subs);
    for i in 0..n_subs {
        let c = Client::builder()
            .connect(addr)
            .unwrap_or_else(|e| panic!("subscriber {i} connect: {e}"));
        subs.push(
            c.subscribe(&[])
                .unwrap_or_else(|e| panic!("subscriber {i} register: {e}")),
        );
    }
    let register_secs = fan_start.elapsed().as_secs_f64();
    fleet.apply_batch(&updates[..2048.min(updates.len())]);
    fleet.flush();

    let mut pending: Vec<usize> = (0..n_subs).collect();
    let deadline = Instant::now() + std::time::Duration::from_secs(300);
    while !pending.is_empty() {
        assert!(
            Instant::now() < deadline,
            "{} of {n_subs} subscribers never saw a push",
            pending.len()
        );
        pending.retain(|&i| match subs[i].try_next() {
            Ok(Some(_)) => false,
            Ok(None) => true,
            Err(e) => panic!("subscriber {i} severed: {e}"),
        });
    }
    let fan_secs = fan_start.elapsed().as_secs_f64();

    // Scrape while every subscriber is still registered, so the gauge and
    // the fan-out histogram reflect the loaded server.
    let fan_snapshot = Client::builder()
        .connect(addr)
        .expect("fan-in scrape connect")
        .metrics()
        .expect("fan-in metrics scrape");
    let subscribers_gauge = fan_snapshot
        .gauge(names::SERVE_SUBSCRIBERS, &[])
        .unwrap_or(0);
    let pushes_total = fan_snapshot.counter_total(names::SERVE_PUSHES_TOTAL);
    let slow_evictions = fan_snapshot.counter_total(names::SERVE_SLOW_EVICTIONS_TOTAL);
    let fanout_hist = fan_snapshot.merged_histogram(names::SERVE_FANOUT_LATENCY_US);
    let push_p50_ms = fanout_hist.percentile(50.0) as f64 / 1000.0;
    let push_p99_ms = fanout_hist.percentile(99.0) as f64 / 1000.0;
    let server_rss_mb = rss_kb() as f64 / 1024.0;
    assert_eq!(
        subscribers_gauge as usize, n_subs,
        "the registry's subscriber gauge must count every registration"
    );
    assert!(
        pushes_total >= n_subs as u64,
        "every subscriber got at least one push, so the push counter \
         ({pushes_total}) cannot trail the subscriber count ({n_subs})"
    );
    drop(subs);

    let mut fan_table = Table::new(
        "subscriber fan-in (catch-up + one live publication)",
        &["metric", "value"],
    );
    fan_table.row(vec!["subscribers".into(), n_subs.to_string()]);
    fan_table.row(vec!["register s".into(), format!("{register_secs:.3}")]);
    fan_table.row(vec!["all-pushed s".into(), format!("{fan_secs:.3}")]);
    fan_table.row(vec!["pushes total".into(), pushes_total.to_string()]);
    fan_table.row(vec!["push p99 ms".into(), format!("{push_p99_ms:.3}")]);
    fan_table.row(vec!["slow evictions".into(), slow_evictions.to_string()]);
    fan_table.row(vec!["server RSS MB".into(), format!("{server_rss_mb:.1}")]);
    fan_table.print();

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"n_updates\": {},\n",
        N_UPDATES * INGEST_PASSES
    ));
    json.push_str(&format!("  \"seed\": {SEED},\n"));
    json.push_str(&format!("  \"cpu_cores\": {cores},\n"));
    json.push_str(&format!("  \"n_shards\": {n_shards},\n"));
    json.push_str(&format!("  \"n_clients\": {N_CLIENTS},\n"));
    json.push_str("  \"workload\": \"shard_aligned_stream\",\n");
    json.push_str("  \"latency_source\": \"server_registry\",\n");
    json.push_str(&format!("  \"duration_secs\": {duration_secs:.6},\n"));
    json.push_str(&format!("  \"ingest_secs\": {ingest_secs:.6},\n"));
    json.push_str(&format!("  \"requests_total\": {requests_total},\n"));
    json.push_str(&format!("  \"requests_per_sec\": {requests_per_sec:.1},\n"));
    json.push_str(&format!("  \"polls_total\": {polls_total},\n"));
    json.push_str(&format!("  \"poll_p50_ms\": {p50:.4},\n"));
    json.push_str(&format!("  \"poll_p99_ms\": {p99:.4},\n"));
    json.push_str(&format!(
        "  \"poll_p50_us\": {},\n",
        poll_hist.percentile(50.0)
    ));
    json.push_str(&format!(
        "  \"poll_p99_us\": {},\n",
        poll_hist.percentile(99.0)
    ));
    json.push_str(&format!("  \"topks_total\": {},\n", topk_hist.count));
    json.push_str(&format!(
        "  \"topk_p99_ms\": {:.4},\n",
        topk_hist.percentile(99.0) as f64 / 1000.0
    ));
    json.push_str(&format!("  \"delta_events_applied\": {events_applied},\n"));
    json.push_str(&format!("  \"resyncs\": {resyncs},\n"));
    json.push_str("  \"fan_in\": {\n");
    json.push_str(&format!("    \"subscribers\": {n_subs},\n"));
    json.push_str(&format!("    \"register_secs\": {register_secs:.6},\n"));
    json.push_str(&format!("    \"all_pushed_secs\": {fan_secs:.6},\n"));
    json.push_str(&format!("    \"pushes_total\": {pushes_total},\n"));
    json.push_str(&format!("    \"push_p50_ms\": {push_p50_ms:.4},\n"));
    json.push_str(&format!("    \"push_p99_ms\": {push_p99_ms:.4},\n"));
    json.push_str(&format!("    \"slow_evictions\": {slow_evictions},\n"));
    json.push_str(&format!("    \"server_rss_mb\": {server_rss_mb:.2}\n"));
    json.push_str("  }\n");
    json.push_str("}\n");
    match std::fs::write("BENCH_serve.json", json) {
        Ok(()) => println!("wrote BENCH_serve.json"),
        Err(e) => eprintln!("failed to write BENCH_serve.json: {e}"),
    }
}
