//! Figures 4(h) and 4(i): GRASP recall and runtime relative to DynDens on the
//! unweighted dataset, as a function of the number of GRASP iterations per
//! update.
//!
//! Usage:
//!
//! ```bash
//! cargo run --release -p dyndens-bench --bin fig4_grasp -- [--scale 1.0]
//! ```

use std::time::{Duration, Instant};

use dyndens_baselines::{Grasp, GraspConfig};
use dyndens_bench::{run_updates, unweighted_dataset, DatasetSpec, Table};
use dyndens_core::{DynDens, DynDensConfig};
use dyndens_density::AvgWeight;
use dyndens_graph::VertexSet;

fn main() {
    let scale = std::env::args()
        .skip_while(|a| a != "--scale")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    // GRASP with subset enumeration is expensive; use a reduced default scale.
    let spec = DatasetSpec::scaled(0.25 * scale);
    let updates = unweighted_dataset(&spec);
    println!("unweighted dataset: {} updates", updates.len());

    let n_max = 5;
    let threshold = 1.0;
    let config = DynDensConfig::new(threshold, n_max).with_delta_it_fraction(0.5);

    // Reference: DynDens runtime and exact answer.
    let dyndens_time = run_updates(
        AvgWeight,
        config.clone(),
        &updates,
        Some(Duration::from_secs(600)),
        1000,
    )
    .expect("DynDens run exceeded the time cap")
    .elapsed;
    let mut exact = DynDens::new(AvgWeight, config);
    for u in &updates {
        exact.apply_update(*u);
    }
    let truth: Vec<VertexSet> = exact
        .output_dense_subgraphs()
        .into_iter()
        .map(|(s, _)| s)
        .collect();
    println!(
        "DynDens: {:.1} ms, {} output-dense subgraphs at end of stream",
        dyndens_time.as_secs_f64() * 1e3,
        truth.len()
    );

    let mut table = Table::new(
        "Figures 4(h)/(i): GRASP recall and runtime relative to DynDens (unweighted, Nmax = 5, T = 1)",
        &["iterations/update", "recall", "runtime_ms", "runtime / DynDens", "subgraphs found"],
    );
    for iterations in [1usize, 2, 4, 8, 16] {
        let mut grasp = Grasp::new(
            AvgWeight,
            threshold,
            GraspConfig {
                iterations_per_update: iterations,
                alpha: 0.5,
                n_max,
                seed: 42,
            },
        );
        let start = Instant::now();
        for u in &updates {
            grasp.apply_update(*u);
        }
        let elapsed = start.elapsed();
        let recall = grasp.recall_against(&truth);
        table.row(vec![
            format!("{iterations}"),
            format!("{recall:.2}"),
            format!("{:.1}", elapsed.as_secs_f64() * 1e3),
            format!(
                "{:.2}",
                elapsed.as_secs_f64() / dyndens_time.as_secs_f64().max(1e-9)
            ),
            format!("{}", grasp.found().len()),
        ]);
    }
    table.print();
    println!("\n(The paper's observation: GRASP trades runtime for recall with diminishing returns; DynDens achieves recall 1 by construction.)");
}
