//! Comparison against the Stix dynamic maximal-clique baseline (Section 5.2):
//! on the unweighted dataset with `AvgWeight` and `T = 1`, DynDens maintains
//! all cliques up to `Nmax` while Stix maintains maximal cliques of
//! unconstrained cardinality. The paper finds the two roughly comparable at
//! `Nmax = 5`, with DynDens faster for smaller `Nmax` and slower for larger.
//!
//! Usage:
//!
//! ```bash
//! cargo run --release -p dyndens-bench --bin stix_comparison -- [--scale 1.0]
//! ```

use std::time::{Duration, Instant};

use dyndens_baselines::StixCliques;
use dyndens_bench::{run_updates, unweighted_dataset, DatasetSpec, Table};
use dyndens_core::DynDensConfig;
use dyndens_density::AvgWeight;

fn main() {
    let scale = std::env::args()
        .skip_while(|a| a != "--scale")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let spec = DatasetSpec::scaled(scale);
    let updates = unweighted_dataset(&spec);
    println!("unweighted dataset: {} updates", updates.len());

    // Stix: edge insertions/deletions follow the 0/1 weights.
    let start = Instant::now();
    let mut stix = StixCliques::new();
    for u in &updates {
        stix.apply_unweighted_update(u.a, u.b, u.is_positive());
    }
    let stix_time = start.elapsed();
    println!(
        "Stix: {:.1} ms, {} maximal cliques at end of stream",
        stix_time.as_secs_f64() * 1e3,
        stix.clique_count()
    );

    let mut table = Table::new(
        "Stix vs DynDens (AvgWeight, T = 1, unweighted dataset)",
        &[
            "algorithm",
            "Nmax",
            "time_ms",
            "relative to Stix",
            "subgraphs maintained",
        ],
    );
    table.row(vec![
        "Stix (maximal cliques)".into(),
        "unbounded".into(),
        format!("{:.1}", stix_time.as_secs_f64() * 1e3),
        "1.00".into(),
        format!("{}", stix.clique_count()),
    ]);
    for n_max in [3usize, 4, 5, 6, 7] {
        // delta_it at half its maximum value, as in the paper's comparison.
        let config = DynDensConfig::new(1.0, n_max).with_delta_it_fraction(0.5);
        match run_updates(
            AvgWeight,
            config,
            &updates,
            Some(Duration::from_secs(600)),
            1000,
        ) {
            Some(m) => {
                table.row(vec![
                    "DynDens (all cliques)".into(),
                    format!("{n_max}"),
                    format!("{:.1}", m.millis()),
                    format!(
                        "{:.2}",
                        m.millis() / (stix_time.as_secs_f64() * 1e3).max(1e-9)
                    ),
                    format!("{}", m.dense_at_end),
                ]);
            }
            None => {
                table.row(vec![
                    "DynDens (all cliques)".into(),
                    format!("{n_max}"),
                    ">cap".into(),
                    "-".into(),
                    "-".into(),
                ]);
            }
        }
    }
    table.print();
    println!("\n(Expected shape: DynDens is comparable to Stix around Nmax = 5, faster below, slower above.)");
}
