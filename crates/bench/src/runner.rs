//! Timing helpers shared by the harness binaries.

use std::time::{Duration, Instant};

use dyndens_core::{DynDens, DynDensConfig, EngineStats};
use dyndens_density::DensityMeasure;
use dyndens_graph::EdgeUpdate;

/// The outcome of running one engine configuration over an update stream.
#[derive(Debug, Clone)]
pub struct RunMeasurement {
    /// Wall-clock time to process every update.
    pub elapsed: Duration,
    /// Number of updates processed.
    pub updates: usize,
    /// Dense subgraphs maintained at the end of the stream.
    pub dense_at_end: usize,
    /// Output-dense subgraphs at the end of the stream.
    pub output_dense_at_end: usize,
    /// Average number of output-dense subgraphs, sampled every `sample_every`
    /// updates (the quantity Table 2 reports).
    pub avg_output_dense: f64,
    /// Engine work counters.
    pub stats: EngineStats,
}

impl RunMeasurement {
    /// Milliseconds elapsed (convenience for table rows).
    pub fn millis(&self) -> f64 {
        self.elapsed.as_secs_f64() * 1e3
    }
}

/// Runs a DynDens engine over `updates`, optionally capping the wall-clock
/// time (`time_cap`, mirroring the paper's 10-minute cap on individual runs).
/// Returns `None` if the cap was exceeded.
pub fn run_updates<D: DensityMeasure>(
    measure: D,
    config: DynDensConfig,
    updates: &[EdgeUpdate],
    time_cap: Option<Duration>,
    sample_every: usize,
) -> Option<RunMeasurement> {
    let mut engine = DynDens::new(measure, config);
    let mut events = Vec::new();
    let mut output_samples: Vec<usize> = Vec::new();
    let start = Instant::now();
    for (i, u) in updates.iter().enumerate() {
        events.clear();
        engine.apply_update_into(*u, &mut events);
        if sample_every > 0 && i % sample_every == 0 {
            output_samples.push(engine.output_dense_count());
            if let Some(cap) = time_cap {
                if start.elapsed() > cap {
                    return None;
                }
            }
        }
    }
    let elapsed = start.elapsed();
    if let Some(cap) = time_cap {
        if elapsed > cap {
            return None;
        }
    }
    let output_dense_at_end = engine.output_dense_count();
    output_samples.push(output_dense_at_end);
    let avg_output_dense =
        output_samples.iter().sum::<usize>() as f64 / output_samples.len() as f64;
    Some(RunMeasurement {
        elapsed,
        updates: updates.len(),
        dense_at_end: engine.dense_count(),
        output_dense_at_end,
        avg_output_dense,
        stats: engine.stats().clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyndens_density::AvgWeight;
    use dyndens_graph::VertexId;

    fn toy_updates() -> Vec<EdgeUpdate> {
        (0..50u32)
            .map(|i| EdgeUpdate::new(VertexId(i % 7), VertexId((i + 1) % 7), 0.2))
            .collect()
    }

    #[test]
    fn measures_a_small_run() {
        let m = run_updates(
            AvgWeight,
            DynDensConfig::new(0.5, 4).with_delta_it_fraction(0.3),
            &toy_updates(),
            None,
            10,
        )
        .unwrap();
        assert_eq!(m.updates, 50);
        assert!(m.millis() >= 0.0);
        assert!(m.dense_at_end >= m.output_dense_at_end);
        assert!(m.avg_output_dense >= 0.0);
        assert_eq!(m.stats.updates, 50);
    }

    #[test]
    fn time_cap_aborts_long_runs() {
        let result = run_updates(
            AvgWeight,
            DynDensConfig::new(0.5, 4).with_delta_it_fraction(0.3),
            &toy_updates(),
            Some(Duration::from_nanos(1)),
            1,
        );
        assert!(result.is_none());
    }
}
