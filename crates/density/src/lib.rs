//! # dyndens-density
//!
//! Density measures and threshold families for the Engagement problem.
//!
//! The paper defines the density of a subgraph `C` as
//! `dens(C) = score(C) / S_|C|`, where `score(C)` is the sum of the pairwise
//! edge weights inside `C` and `S_n` is a function quantifying the relative
//! importance of a subgraph's cardinality. `S_n` must satisfy the monotonicity
//! property `n/(n-1) <= S_n/S_{n-1} <= n/(n-2)`, which rules out
//! counter-intuitive density definitions while covering all the commonly used
//! ones. This crate provides:
//!
//! * the [`DensityMeasure`] trait together with the three instantiations used
//!   throughout the paper's evaluation —
//!   [`AvgWeight`] (`S_n = n(n-1)/2`, average edge weight),
//!   [`AvgDegree`] (`S_n = n`, generalised average degree)
//!   and [`SqrtDens`] (`S_n = sqrt(n(n-1))`); plus a
//!   [`PowerMean`] family covering the whole admissible
//!   spectrum;
//! * the threshold family [`ThresholdFamily`]
//!   `T_n` of Eq. (8), parameterised by the output threshold `T`, the maximum
//!   cardinality `Nmax` and the exploration granularity `delta_it`, together
//!   with the classification of subgraphs into *sparse*, *dense*,
//!   *output-dense* and *too-dense* (Table 1 of the paper).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod measure;
pub mod threshold;

pub use measure::{AvgDegree, AvgWeight, DensityMeasure, PowerMean, SqrtDens};
pub use threshold::{DensityClass, ThresholdFamily};

/// Tolerance used when comparing scores against thresholds. Scores are
/// accumulated incrementally from streams of floating point deltas, so strict
/// comparisons would make "dense" an unstable property right at the boundary.
/// Both the DynDens engine and the brute-force oracle use the same comparison
/// helpers, keeping them consistent with each other.
pub const SCORE_EPSILON: f64 = 1e-9;

/// Returns `true` if `score` meets `bound` up to [`SCORE_EPSILON`].
#[inline]
pub fn score_meets(score: f64, bound: f64) -> bool {
    score + SCORE_EPSILON >= bound
}
