//! The cardinality scaling functions `S_n` that define graph density.

/// A quantification of graph density via its cardinality scaling function
/// `S_n`, with `dens(C) = score(C) / S_|C|`.
///
/// Implementations must satisfy the paper's monotonicity requirement
/// `n/(n-1) <= S_n/S_{n-1} <= n/(n-2)` for all `n >= 3`, which guarantees the
/// normalised quantity `g_n = S_n / (n (n-1))` is non-increasing and excludes
/// degenerate density definitions (e.g. ones where removing a vertex from an
/// unweighted clique *increases* its density). Use
/// [`validate_monotonicity`](DensityMeasure::validate_monotonicity) in tests
/// when defining a custom measure.
pub trait DensityMeasure: std::fmt::Debug + Clone + Send + Sync + 'static {
    /// A short human-readable name used in benchmark reports.
    fn name(&self) -> &'static str;

    /// The cardinality scaling `S_n`, for `n >= 2`.
    fn s(&self, n: usize) -> f64;

    /// The normalised scaling `g_n = S_n / (n (n - 1))`, for `n >= 2`.
    ///
    /// The monotonicity requirement on `S_n` implies `g_n <= g_{n-1}`.
    #[inline]
    fn g(&self, n: usize) -> f64 {
        debug_assert!(n >= 2);
        self.s(n) / (n as f64 * (n as f64 - 1.0))
    }

    /// The density of a subgraph with the given total edge weight and
    /// cardinality.
    #[inline]
    fn density(&self, score: f64, n: usize) -> f64 {
        score / self.s(n)
    }

    /// Checks the monotonicity requirement `n/(n-1) <= S_n/S_{n-1} <= n/(n-2)`
    /// for every cardinality in `3..=max_n`, returning the first violating `n`
    /// if any.
    fn validate_monotonicity(&self, max_n: usize) -> Result<(), usize> {
        const TOL: f64 = 1e-9;
        for n in 3..=max_n {
            let ratio = self.s(n) / self.s(n - 1);
            let nf = n as f64;
            let lower = nf / (nf - 1.0);
            let upper = nf / (nf - 2.0);
            if ratio < lower - TOL || ratio > upper + TOL {
                return Err(n);
            }
        }
        Ok(())
    }
}

/// `S_n = n (n - 1) / 2`: density is the **average edge weight** of the
/// subgraph. Favours small, tightly connected subgraphs. On unweighted graphs
/// a subgraph has density 1 under this measure iff it is a clique.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AvgWeight;

impl DensityMeasure for AvgWeight {
    fn name(&self) -> &'static str {
        "AvgWeight"
    }

    #[inline]
    fn s(&self, n: usize) -> f64 {
        let n = n as f64;
        n * (n - 1.0) / 2.0
    }

    #[inline]
    fn g(&self, _n: usize) -> f64 {
        0.5
    }
}

/// `S_n = n`: density is a **generalised average node degree**
/// (`2 score / n` up to a factor of two). Favours larger subgraphs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AvgDegree;

impl DensityMeasure for AvgDegree {
    fn name(&self) -> &'static str {
        "AvgDegree"
    }

    #[inline]
    fn s(&self, n: usize) -> f64 {
        n as f64
    }

    #[inline]
    fn g(&self, n: usize) -> f64 {
        1.0 / (n as f64 - 1.0)
    }
}

/// `S_n = sqrt(n (n - 1))`: a compromise between [`AvgWeight`] and
/// [`AvgDegree`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SqrtDens;

impl DensityMeasure for SqrtDens {
    fn name(&self) -> &'static str {
        "SqrtDens"
    }

    #[inline]
    fn s(&self, n: usize) -> f64 {
        let n = n as f64;
        (n * (n - 1.0)).sqrt()
    }
}

/// A parametric family `S_n = (n (n - 1))^p / 2^p` interpolating between
/// [`AvgDegree`]-like (`p` close to 0.5) and [`AvgWeight`] (`p = 1`) behaviour.
///
/// For exponents `p` in `[0.5, 1.0]` the monotonicity requirement holds:
/// `S_n / S_{n-1} = (n / (n - 2))^p`, which lies between `n/(n-1)` and
/// `n/(n-2)` for that range of `p`. The constructor rejects exponents outside
/// the admissible range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerMean {
    exponent: f64,
}

impl PowerMean {
    /// Creates the measure `S_n = (n (n - 1) / 2)^p`. `p` must lie in
    /// `[0.5, 1.0]`.
    ///
    /// # Panics
    ///
    /// Panics if `exponent` lies outside `[0.5, 1.0]`.
    pub fn new(exponent: f64) -> Self {
        assert!(
            (0.5..=1.0).contains(&exponent),
            "PowerMean exponent must lie in [0.5, 1.0], got {exponent}"
        );
        PowerMean { exponent }
    }

    /// The exponent `p`.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }
}

impl DensityMeasure for PowerMean {
    fn name(&self) -> &'static str {
        "PowerMean"
    }

    #[inline]
    fn s(&self, n: usize) -> f64 {
        let n = n as f64;
        (n * (n - 1.0) / 2.0).powf(self.exponent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_weight_values() {
        let m = AvgWeight;
        assert_eq!(m.s(2), 1.0);
        assert_eq!(m.s(3), 3.0);
        assert_eq!(m.s(4), 6.0);
        assert_eq!(m.g(2), 0.5);
        assert_eq!(m.g(10), 0.5);
        // density of a triangle with all weights 1 is 1
        assert!((m.density(3.0, 3) - 1.0).abs() < 1e-12);
        assert_eq!(m.name(), "AvgWeight");
    }

    #[test]
    fn avg_degree_values() {
        let m = AvgDegree;
        assert_eq!(m.s(2), 2.0);
        assert_eq!(m.s(5), 5.0);
        assert!((m.g(3) - 0.5).abs() < 1e-12);
        assert!((m.g(5) - 0.25).abs() < 1e-12);
        assert_eq!(m.name(), "AvgDegree");
    }

    #[test]
    fn sqrt_dens_values() {
        let m = SqrtDens;
        assert!((m.s(2) - (2.0f64).sqrt()).abs() < 1e-12);
        assert!((m.s(3) - (6.0f64).sqrt()).abs() < 1e-12);
        // Its growth ratio S_n / S_{n-1} lies strictly between AvgDegree's
        // (the lower bound n/(n-1)) and AvgWeight's (the upper bound n/(n-2)),
        // which is the sense in which the paper says it "lies in between".
        for n in 4..10 {
            let ratio = m.s(n) / m.s(n - 1);
            let lower = AvgDegree.s(n) / AvgDegree.s(n - 1);
            let upper = AvgWeight.s(n) / AvgWeight.s(n - 1);
            assert!(ratio > lower && ratio < upper, "n={n}");
        }
        assert_eq!(m.name(), "SqrtDens");
    }

    #[test]
    fn monotonicity_holds_for_builtin_measures() {
        assert_eq!(AvgWeight.validate_monotonicity(64), Ok(()));
        assert_eq!(AvgDegree.validate_monotonicity(64), Ok(()));
        assert_eq!(SqrtDens.validate_monotonicity(64), Ok(()));
        assert_eq!(PowerMean::new(0.5).validate_monotonicity(64), Ok(()));
        assert_eq!(PowerMean::new(0.75).validate_monotonicity(64), Ok(()));
        assert_eq!(PowerMean::new(1.0).validate_monotonicity(64), Ok(()));
    }

    #[test]
    fn monotonicity_detects_violations() {
        /// A deliberately invalid measure: constant `S_n` means removing a
        /// vertex never lowers the denominator.
        #[derive(Debug, Clone)]
        struct Constant;
        impl DensityMeasure for Constant {
            fn name(&self) -> &'static str {
                "Constant"
            }
            fn s(&self, _n: usize) -> f64 {
                1.0
            }
        }
        assert_eq!(Constant.validate_monotonicity(10), Err(3));
    }

    #[test]
    fn g_is_non_increasing() {
        for n in 3..=32 {
            assert!(AvgWeight.g(n) <= AvgWeight.g(n - 1) + 1e-12);
            assert!(AvgDegree.g(n) <= AvgDegree.g(n - 1) + 1e-12);
            assert!(SqrtDens.g(n) <= SqrtDens.g(n - 1) + 1e-12);
            assert!(PowerMean::new(0.6).g(n) <= PowerMean::new(0.6).g(n - 1) + 1e-12);
        }
    }

    #[test]
    fn power_mean_matches_avg_weight_at_one() {
        let p = PowerMean::new(1.0);
        for n in 2..10 {
            assert!((p.s(n) - AvgWeight.s(n)).abs() < 1e-9);
        }
        assert_eq!(p.exponent(), 1.0);
    }

    #[test]
    #[should_panic(expected = "exponent")]
    fn power_mean_rejects_bad_exponent() {
        let _ = PowerMean::new(1.5);
    }
}
