//! The cardinality-dependent threshold family `T_n` (Eq. 8 of the paper) and
//! the static density classification of Table 1.

use crate::measure::DensityMeasure;
use crate::score_meets;

/// The static density class of a subgraph (Table 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DensityClass {
    /// `dens(C) < T_|C|`: not maintained by DynDens.
    Sparse,
    /// `T_|C| <= dens(C) < T`: maintained, but not reported.
    DenseOnly,
    /// `T <= dens(C) < T_{|C|+1}`: maintained and reported.
    OutputDense,
    /// `dens(C) >= T_{|C|+1}`: every supergraph obtained by adding one vertex
    /// (even a disconnected one) is still dense.
    TooDense,
}

impl DensityClass {
    /// `true` for every class except [`DensityClass::Sparse`].
    #[inline]
    pub fn is_dense(self) -> bool {
        !matches!(self, DensityClass::Sparse)
    }

    /// `true` for [`DensityClass::OutputDense`] and [`DensityClass::TooDense`]
    /// when the latter also clears the output threshold (which it always does,
    /// since `T_{n+1} >= T_n` and `T_n <= T` for `n <= Nmax`... see
    /// [`ThresholdFamily::classify`], which performs the exact checks).
    #[inline]
    pub fn is_output_dense(self) -> bool {
        matches!(self, DensityClass::OutputDense | DensityClass::TooDense)
    }
}

/// The threshold family `T_n` used by DynDens to decide which subgraphs to
/// maintain, instantiated as in Section 4.1.3 (Eq. 8):
///
/// ```text
/// T_n = (1 / g_n) * ( g_Nmax * T  +  delta_it * ( (n-2)/(n-1) - (Nmax-2)/(Nmax-1) ) )
/// ```
///
/// where `g_n = S_n / (n (n-1))`. This instantiation guarantees:
///
/// * `T_Nmax = T`, so every output-dense subgraph (of cardinality at most
///   `Nmax`) is also dense and therefore maintained;
/// * the growth property: every dense subgraph of cardinality `n` has a dense
///   subgraph of cardinality `n - 1`;
/// * the single-iteration condition of Eq. (1) simplifies to
///   `delta <= delta_it`, so an update of magnitude `delta` requires at most
///   `ceil(delta / delta_it)` exploration iterations.
///
/// `delta_it` must lie in the open interval `(0, delta_it_max)` with
/// `delta_it_max = (Nmax - 1)/(Nmax - 2) * g_Nmax * T` (for `Nmax > 2`); small
/// values mean DynDens maintains barely more than the output-dense subgraphs
/// but explores more per update, large values maintain more subgraphs but
/// explore less — the space/time trade-off of Section 4.1.4.
#[derive(Debug, Clone)]
pub struct ThresholdFamily<D: DensityMeasure> {
    measure: D,
    /// Output density threshold `T`.
    threshold: f64,
    /// Maximum cardinality of subgraphs of interest.
    n_max: usize,
    /// Exploration granularity `delta_it`.
    delta_it: f64,
    /// Precomputed `S_n * T_n` for `n in 0..=n_max + 1` (entries 0 and 1 are
    /// unused and set to 0). Comparing `score(C) >= S_n * T_n` avoids a
    /// division in the hot path and is how the paper's inequalities are stated.
    score_thresholds: Vec<f64>,
}

impl<D: DensityMeasure> ThresholdFamily<D> {
    /// Builds the threshold family for output threshold `T`, maximum
    /// cardinality `n_max` and exploration granularity `delta_it`.
    ///
    /// # Panics
    ///
    /// Panics if `n_max < 2`, `threshold <= 0`, or `delta_it` lies outside the
    /// validity interval `(0, delta_it_max)`.
    pub fn new(measure: D, threshold: f64, n_max: usize, delta_it: f64) -> Self {
        assert!(n_max >= 2, "Nmax must be at least 2, got {n_max}");
        assert!(
            threshold > 0.0 && threshold.is_finite(),
            "the density threshold T must be positive and finite, got {threshold}"
        );
        let max = Self::delta_it_upper_bound(&measure, threshold, n_max);
        assert!(
            delta_it > 0.0 && delta_it <= max,
            "delta_it = {delta_it} outside the validity interval (0, {max}]"
        );
        let mut family = ThresholdFamily {
            measure,
            threshold,
            n_max,
            delta_it,
            score_thresholds: Vec::new(),
        };
        family.recompute_tables();
        family
    }

    /// Builds the family with `delta_it` expressed as a fraction of its maximum
    /// admissible value (the form used throughout the paper's evaluation, e.g.
    /// "`delta_it` set to 1% of its maximum value").
    pub fn with_delta_it_fraction(measure: D, threshold: f64, n_max: usize, fraction: f64) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "delta_it fraction must lie in (0, 1], got {fraction}"
        );
        let max = Self::delta_it_upper_bound(&measure, threshold, n_max);
        Self::new(measure, threshold, n_max, fraction * max)
    }

    /// The largest admissible `delta_it` for the given parameters:
    /// `(Nmax - 1)/(Nmax - 2) * g_Nmax * T` (for `Nmax > 2`; for `Nmax = 2`
    /// the `delta_it` term never contributes and any positive value is valid,
    /// so we return `g_2 * T`).
    pub fn delta_it_upper_bound(measure: &D, threshold: f64, n_max: usize) -> f64 {
        let g_max = measure.g(n_max);
        if n_max <= 2 {
            g_max * threshold
        } else {
            (n_max as f64 - 1.0) / (n_max as f64 - 2.0) * g_max * threshold
        }
    }

    fn recompute_tables(&mut self) {
        let g_max = self.measure.g(self.n_max);
        let corr_max = (self.n_max as f64 - 2.0) / (self.n_max as f64 - 1.0);
        let mut score_thresholds = vec![0.0; self.n_max + 2];
        for (n, slot) in score_thresholds
            .iter_mut()
            .enumerate()
            .take(self.n_max + 2)
            .skip(2)
        {
            let nf = n as f64;
            let corr_n = (nf - 2.0) / (nf - 1.0);
            // T_n * g_n  =  g_Nmax * T + delta_it * (corr_n - corr_max)
            let tn_gn = g_max * self.threshold + self.delta_it * (corr_n - corr_max);
            // S_n * T_n  =  n (n-1) * (T_n * g_n)
            *slot = nf * (nf - 1.0) * tn_gn;
        }
        self.score_thresholds = score_thresholds;
    }

    /// The density measure in use.
    pub fn measure(&self) -> &D {
        &self.measure
    }

    /// The output density threshold `T`.
    pub fn output_threshold(&self) -> f64 {
        self.threshold
    }

    /// The maximum cardinality `Nmax` of subgraphs of interest.
    pub fn n_max(&self) -> usize {
        self.n_max
    }

    /// The exploration granularity `delta_it`.
    pub fn delta_it(&self) -> f64 {
        self.delta_it
    }

    /// Replaces the output threshold `T`, rescaling `delta_it` proportionally
    /// (`delta_it *= T_new / T_old`), as prescribed by Algorithm 3 line 1 of
    /// the dynamic threshold adjustment procedure.
    pub fn set_output_threshold(&mut self, new_threshold: f64) {
        assert!(
            new_threshold > 0.0 && new_threshold.is_finite(),
            "the density threshold T must be positive and finite, got {new_threshold}"
        );
        self.delta_it *= new_threshold / self.threshold;
        self.threshold = new_threshold;
        self.recompute_tables();
    }

    /// The maintenance threshold `T_n` for subgraphs of cardinality `n`
    /// (`2 <= n <= Nmax`). `T_Nmax` equals the output threshold `T`.
    pub fn t(&self, n: usize) -> f64 {
        assert!(
            (2..=self.n_max + 1).contains(&n),
            "T_n defined for 2 <= n <= Nmax+1"
        );
        self.score_thresholds[n] / self.measure.s(n)
    }

    /// The score a subgraph of cardinality `n` must reach to be **dense**:
    /// `S_n * T_n`.
    #[inline]
    pub fn dense_score_bound(&self, n: usize) -> f64 {
        self.score_thresholds[n]
    }

    /// The score a subgraph of cardinality `n` must reach to be
    /// **output-dense**: `S_n * T`.
    #[inline]
    pub fn output_score_bound(&self, n: usize) -> f64 {
        self.measure.s(n) * self.threshold
    }

    /// `true` if a subgraph of cardinality `n` with total edge weight `score`
    /// is dense (i.e. should be maintained by DynDens).
    #[inline]
    pub fn is_dense(&self, score: f64, n: usize) -> bool {
        n >= 2 && n <= self.n_max && score_meets(score, self.dense_score_bound(n))
    }

    /// `true` if a subgraph of cardinality `n` with total edge weight `score`
    /// is output-dense (i.e. must be reported).
    #[inline]
    pub fn is_output_dense(&self, score: f64, n: usize) -> bool {
        n >= 2 && n <= self.n_max && score_meets(score, self.output_score_bound(n))
    }

    /// `true` if a subgraph of cardinality `n` with total edge weight `score`
    /// is too-dense: augmenting it with **any** vertex (even a disconnected
    /// one, which contributes no weight) still yields a dense subgraph, i.e.
    /// `score >= S_{n+1} * T_{n+1}`.
    ///
    /// This is the operational reading of the paper's definition ("after
    /// adding any other vertex to it, it is still dense"); it is what both the
    /// exploration pruning and the explore-all / `ImplicitTooDense` machinery
    /// rely on.
    #[inline]
    pub fn is_too_dense(&self, score: f64, n: usize) -> bool {
        if n < 2 || n >= self.n_max {
            // Subgraphs of maximum cardinality cannot grow further, so the
            // notion of too-dense does not apply to them.
            return false;
        }
        score_meets(score, self.dense_score_bound(n + 1))
    }

    /// Classifies a subgraph by score and cardinality.
    pub fn classify(&self, score: f64, n: usize) -> DensityClass {
        if !self.is_dense(score, n) {
            DensityClass::Sparse
        } else if self.is_too_dense(score, n) {
            DensityClass::TooDense
        } else if self.is_output_dense(score, n) {
            DensityClass::OutputDense
        } else {
            DensityClass::DenseOnly
        }
    }

    /// The number of exploration iterations DynDens must perform for an update
    /// of magnitude `delta`: `ceil(delta / delta_it)` (Section 4.1.4).
    pub fn exploration_iterations(&self, delta: f64) -> usize {
        if delta <= 0.0 {
            return 0;
        }
        (delta / self.delta_it).ceil() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::{AvgDegree, AvgWeight, SqrtDens};

    #[test]
    fn t_nmax_equals_output_threshold() {
        let fam = ThresholdFamily::new(AvgWeight, 1.0, 4, 0.15);
        assert!((fam.t(4) - 1.0).abs() < 1e-12);
        let fam = ThresholdFamily::with_delta_it_fraction(AvgDegree, 1.7, 8, 0.3);
        assert!((fam.t(8) - 1.7).abs() < 1e-12);
        let fam = ThresholdFamily::with_delta_it_fraction(SqrtDens, 0.6, 6, 0.01);
        assert!((fam.t(6) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn execution_example_thresholds() {
        // Section 3.1's walkthrough quotes T_2 = 0.9, T_3 = 0.975, T_4 = 1 for
        // "delta_it = 0.15". Those values follow from Eq. (8) when the
        // delta_it correction is applied on the density scale directly (i.e.
        // S_n = n(n-1), the convention of the paper's closed-form bullet). For
        // our canonical AvgWeight (S_n = n(n-1)/2, density = average edge
        // weight, matching the densities listed in Figure 2(b)), the same
        // thresholds correspond to delta_it = 0.075.
        let fam = ThresholdFamily::new(AvgWeight, 1.0, 4, 0.075);
        assert!((fam.t(2) - 0.9).abs() < 1e-9, "T_2 = {}", fam.t(2));
        assert!((fam.t(3) - 0.975).abs() < 1e-9, "T_3 = {}", fam.t(3));
        assert!((fam.t(4) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn avg_degree_closed_form() {
        // For S_n = n the paper derives T_n = (n-1)/(Nmax-1) (T + delta_it) - delta_it.
        let (t, n_max, dit) = (2.0, 6, 0.05);
        let fam = ThresholdFamily::new(AvgDegree, t, n_max, dit);
        for n in 2..=n_max {
            let expected = (n as f64 - 1.0) / (n_max as f64 - 1.0) * (t + dit) - dit;
            assert!((fam.t(n) - expected).abs() < 1e-9, "n={n}");
        }
    }

    #[test]
    fn avg_weight_closed_form() {
        // For S_n = n(n-1)/2 (so g_n = 1/2): T_n = T - 2*delta_it*(1/(n-1) - 1/(Nmax-1)).
        let (t, n_max, dit) = (1.0, 5, 0.1);
        let fam = ThresholdFamily::new(AvgWeight, t, n_max, dit);
        for n in 2..=n_max {
            let expected = t - 2.0 * dit * (1.0 / (n as f64 - 1.0) - 1.0 / (n_max as f64 - 1.0));
            assert!((fam.t(n) - expected).abs() < 1e-9, "n={n}");
        }
    }

    #[test]
    fn tn_gn_is_strictly_increasing() {
        // The growth property requires T_n * g_n > T_{n-1} * g_{n-1}.
        for n_max in [4usize, 6, 10] {
            let fam = ThresholdFamily::with_delta_it_fraction(SqrtDens, 0.8, n_max, 0.4);
            for n in 3..=n_max {
                let cur = fam.t(n) * SqrtDens.g(n);
                let prev = fam.t(n - 1) * SqrtDens.g(n - 1);
                assert!(cur > prev, "violated at n={n} for Nmax={n_max}");
            }
        }
    }

    #[test]
    fn thresholds_positive_within_validity_range() {
        for frac in [0.01, 0.25, 0.5, 0.99] {
            let fam = ThresholdFamily::with_delta_it_fraction(AvgWeight, 0.7, 10, frac);
            for n in 2..=10 {
                assert!(fam.t(n) > 0.0, "T_{n} must be positive (frac={frac})");
            }
        }
    }

    #[test]
    fn classification_matches_definitions() {
        let fam = ThresholdFamily::new(AvgWeight, 1.0, 4, 0.15);
        // 2-subgraph (S_2 = 1): dense needs score >= T_2 = 0.9, output-dense
        // >= 1.0, too-dense needs score >= S_3 * T_3 = 3 * 0.95 = 2.85 (adding
        // any third vertex must keep the subgraph dense).
        assert_eq!(fam.classify(0.5, 2), DensityClass::Sparse);
        assert_eq!(fam.classify(0.92, 2), DensityClass::DenseOnly);
        assert_eq!(fam.classify(0.98, 2), DensityClass::DenseOnly);
        assert_eq!(fam.classify(1.05, 2), DensityClass::OutputDense);
        assert_eq!(fam.classify(2.9, 2), DensityClass::TooDense);
        // A 3-subgraph with score 2.94 clears T_3 (2.85) but not T = 1.0.
        assert_eq!(fam.classify(2.94, 3), DensityClass::DenseOnly);
        assert!(fam.classify(3.0, 3).is_output_dense());
        // Too-dense at cardinality 3 requires score >= S_4 * T_4 = 6.
        assert_eq!(fam.classify(6.0, 3), DensityClass::TooDense);
        // Nmax-subgraphs can never be too-dense (they cannot grow further).
        assert!(!fam.is_too_dense(100.0, 4));
        assert!(matches!(fam.classify(100.0, 4), DensityClass::OutputDense));
        // Cardinalities above Nmax or below 2 are never dense.
        assert!(!fam.is_dense(100.0, 5));
        assert!(!fam.is_dense(100.0, 1));
    }

    #[test]
    fn density_class_helpers() {
        assert!(!DensityClass::Sparse.is_dense());
        assert!(DensityClass::DenseOnly.is_dense());
        assert!(!DensityClass::DenseOnly.is_output_dense());
        assert!(DensityClass::OutputDense.is_output_dense());
        assert!(DensityClass::TooDense.is_output_dense());
    }

    #[test]
    fn exploration_iterations_bound() {
        let fam = ThresholdFamily::new(AvgWeight, 1.0, 4, 0.15);
        assert_eq!(fam.exploration_iterations(0.15), 1);
        assert_eq!(fam.exploration_iterations(0.151), 2);
        assert_eq!(fam.exploration_iterations(0.30), 2);
        assert_eq!(fam.exploration_iterations(1.0), 7);
        assert_eq!(fam.exploration_iterations(-0.5), 0);
        assert_eq!(fam.exploration_iterations(0.0), 0);
    }

    #[test]
    fn set_output_threshold_rescales_delta_it() {
        let mut fam = ThresholdFamily::new(AvgWeight, 1.0, 4, 0.15);
        fam.set_output_threshold(0.8);
        assert!((fam.output_threshold() - 0.8).abs() < 1e-12);
        assert!((fam.delta_it() - 0.12).abs() < 1e-12);
        assert!((fam.t(4) - 0.8).abs() < 1e-12);
        fam.set_output_threshold(1.0);
        assert!((fam.delta_it() - 0.15).abs() < 1e-12);
    }

    #[test]
    fn delta_it_upper_bound_formula() {
        // (Nmax-1)/(Nmax-2) * g_Nmax * T
        let b = ThresholdFamily::delta_it_upper_bound(&AvgWeight, 1.0, 4);
        assert!((b - 1.5 * 0.5).abs() < 1e-12);
        let b = ThresholdFamily::delta_it_upper_bound(&AvgDegree, 2.0, 5);
        assert!((b - (4.0 / 3.0) * (1.0 / 4.0) * 2.0).abs() < 1e-12);
        let b = ThresholdFamily::delta_it_upper_bound(&AvgWeight, 1.0, 2);
        assert!(b > 0.0);
    }

    #[test]
    #[should_panic(expected = "validity interval")]
    fn rejects_out_of_range_delta_it() {
        let _ = ThresholdFamily::new(AvgWeight, 1.0, 4, 10.0);
    }

    #[test]
    #[should_panic(expected = "Nmax")]
    fn rejects_tiny_nmax() {
        let _ = ThresholdFamily::new(AvgWeight, 1.0, 1, 0.01);
    }
}
