//! The process-wide metrics registry.
//!
//! A [`Registry`] interns metrics by `(name, labels)` under one mutex, but
//! the mutex is touched **only at registration**: the handles it returns
//! ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`-backed atomics, so the
//! instrumented hot paths (shard workers, WAL appends, request serving)
//! never contend on the registry itself. Existing `AtomicU64` cells that
//! predate the registry (e.g. the router's per-shard routed counters) can be
//! *adopted* with [`Registry::adopt_counter`] — zero added cost on their
//! update path.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::histogram::Histogram;
use crate::journal::{Journal, ObsEvent, ObsRecord, SpanMark};
use crate::snapshot::{MetricName, MetricSample, RegistrySnapshot};

/// A monotone counter handle. Cloning is cheap; all clones add into the same
/// cell. Counters only go up — rates and deltas are the scraper's job.
#[derive(Clone, Debug)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A last-write-wins gauge handle for point-in-time levels (queue depth,
/// segment bytes). Cloning is cheap; all clones store into the same cell.
#[derive(Clone, Debug)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Gauge {
    /// Stores `v`.
    pub fn set(&self, v: u64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

enum Metric {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// The process-wide metrics registry plus the bounded event journal.
///
/// Construct one per process (or per test), share it as `Arc<Registry>`, and
/// thread it into subsystems via
/// [`ObsHandle`](crate::ObsHandle). [`Registry::snapshot`] captures
/// everything — counters, gauges, histogram buckets, recent events — into a
/// [`RegistrySnapshot`] for the wire or the text exposition.
pub struct Registry {
    metrics: Mutex<BTreeMap<MetricName, Metric>>,
    journal: Journal,
    spans: AtomicU64,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.metrics.lock().map(|m| m.len()).unwrap_or(0);
        f.debug_struct("Registry").field("metrics", &n).finish()
    }
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry {
            metrics: Mutex::new(BTreeMap::new()),
            journal: Journal::new(),
            spans: AtomicU64::new(1),
        }
    }

    fn intern<T>(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Metric,
        extract: impl Fn(&Metric) -> Option<T>,
    ) -> T {
        let key = MetricName::new(name, labels);
        let mut metrics = self.metrics.lock().expect("registry poisoned");
        let metric = metrics.entry(key).or_insert_with(make);
        match extract(metric) {
            Some(handle) => handle,
            None => panic!(
                "metric `{name}` already registered as a {}, requested as a different kind",
                metric.kind()
            ),
        }
    }

    /// Returns the counter registered under `(name, labels)`, creating it at
    /// zero on first use.
    ///
    /// # Panics
    ///
    /// Panics if the same `(name, labels)` was registered as a gauge or
    /// histogram — a programming error, not a runtime condition.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        self.intern(
            name,
            labels,
            || Metric::Counter(Arc::new(AtomicU64::new(0))),
            |m| match m {
                Metric::Counter(c) => Some(Counter { cell: c.clone() }),
                _ => None,
            },
        )
    }

    /// Registers an **existing** atomic cell as the counter `(name, labels)`,
    /// replacing any previous registration under that key. This is how
    /// pre-existing hot-path counters (the router's per-shard routed cells)
    /// join the registry without adding a single instruction to their update
    /// path — and how they are re-registered when a split or merge swaps the
    /// underlying cell.
    pub fn adopt_counter(&self, name: &str, labels: &[(&str, &str)], cell: Arc<AtomicU64>) {
        let key = MetricName::new(name, labels);
        let mut metrics = self.metrics.lock().expect("registry poisoned");
        metrics.insert(key, Metric::Counter(cell));
    }

    /// Removes the metric registered under `(name, labels)`, if any. Used
    /// when a labelled series becomes meaningless (a merged-away shard slot).
    pub fn unregister(&self, name: &str, labels: &[(&str, &str)]) {
        let key = MetricName::new(name, labels);
        let mut metrics = self.metrics.lock().expect("registry poisoned");
        metrics.remove(&key);
    }

    /// Returns the gauge registered under `(name, labels)`, creating it at
    /// zero on first use.
    ///
    /// # Panics
    ///
    /// Panics on a kind mismatch, as for [`Registry::counter`].
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        self.intern(
            name,
            labels,
            || Metric::Gauge(Arc::new(AtomicU64::new(0))),
            |m| match m {
                Metric::Gauge(c) => Some(Gauge { cell: c.clone() }),
                _ => None,
            },
        )
    }

    /// Returns the histogram registered under `(name, labels)`, creating it
    /// empty on first use.
    ///
    /// # Panics
    ///
    /// Panics on a kind mismatch, as for [`Registry::counter`].
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        self.intern(
            name,
            labels,
            || Metric::Histogram(Histogram::new()),
            |m| match m {
                Metric::Histogram(h) => Some(h.clone()),
                _ => None,
            },
        )
    }

    /// Emits a standalone (spanless) event into the journal.
    pub fn emit(&self, event: ObsEvent) {
        self.journal.push(0, SpanMark::Instant, event);
    }

    /// Opens a span with `event` as its `Begin` record and returns the span
    /// id for [`Registry::note`] / [`Registry::end`].
    pub fn begin(&self, event: ObsEvent) -> u64 {
        let span = self.spans.fetch_add(1, Ordering::Relaxed);
        self.journal.push(span, SpanMark::Begin, event);
        span
    }

    /// Emits an interior record of an open span.
    pub fn note(&self, span: u64, event: ObsEvent) {
        self.journal.push(span, SpanMark::Instant, event);
    }

    /// Closes a span with `event` as its `End` record.
    pub fn end(&self, span: u64, event: ObsEvent) {
        self.journal.push(span, SpanMark::End, event);
    }

    /// The retained journal records (both rings), ascending by emission
    /// order.
    pub fn recent_events(&self) -> Vec<ObsRecord> {
        self.journal.recent()
    }

    /// Captures every registered metric and the retained journal into an
    /// owned [`RegistrySnapshot`].
    pub fn snapshot(&self) -> RegistrySnapshot {
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        {
            let metrics = self.metrics.lock().expect("registry poisoned");
            for (name, metric) in metrics.iter() {
                match metric {
                    Metric::Counter(c) => counters.push(MetricSample {
                        name: name.clone(),
                        value: c.load(Ordering::Relaxed),
                    }),
                    Metric::Gauge(g) => gauges.push(MetricSample {
                        name: name.clone(),
                        value: g.load(Ordering::Relaxed),
                    }),
                    Metric::Histogram(h) => histograms.push(crate::snapshot::HistogramSample {
                        name: name.clone(),
                        hist: h.snapshot(),
                    }),
                }
            }
        }
        RegistrySnapshot {
            counters,
            gauges,
            histograms,
            events: self.journal.recent(),
        }
    }
}
