//! # dyndens-obs
//!
//! Process-wide observability for the DynDens system: a lock-free metrics
//! registry, HDR-style log-linear histograms, and a bounded structured event
//! journal — the layer that lets an operator *watch* the paper's real-time
//! maintenance claim hold under production traffic.
//!
//! ## Design
//!
//! * **[`Registry`]** — interns counters, gauges and histograms by
//!   `(name, labels)`. The interning mutex is touched only at registration;
//!   every returned handle is an `Arc`'d atomic, so instrumented hot paths
//!   (shard workers, WAL appends, request serving) pay a handful of relaxed
//!   atomic operations and never contend on the registry. Pre-existing
//!   `AtomicU64` cells join via [`Registry::adopt_counter`] at zero added
//!   hot-path cost.
//! * **[`Histogram`]** — fixed log-linear bucket layout ([`SUB_BUCKETS`]
//!   linear sub-buckets per power-of-two octave, ~3.1% bounded relative
//!   error, exact below [`SUB_BUCKETS`]). Because the layout is identical
//!   everywhere, [`HistogramSnapshot`]s merge losslessly across shards for
//!   fleet-wide p50/p99/p999 readouts.
//! * **[`Registry::emit`] / [`Registry::begin`] / [`Registry::end`]** — a
//!   bounded journal of typed [`ObsEvent`]s with span-style begin/end
//!   pairing, split into a lifecycle ring (recovery, split/merge phases,
//!   compaction windows) and a chatty ring (batches, fsyncs, connections)
//!   so rare events survive busy traffic.
//! * **[`RegistrySnapshot`]** — an owned capture of everything, with a
//!   `dyndens-graph`-convention binary codec (the serve protocol's
//!   `Metrics` response payload) and a Prometheus-style text exposition.
//!
//! ## Threading it through
//!
//! Subsystems take an [`ObsHandle`] — a cloneable, optional reference to a
//! shared [`Registry`]. A disabled handle (the default) keeps every
//! instrumentation site on a `None` fast path, which is what the < 3%
//! ingest-overhead budget is measured against.
//!
//! ```
//! use dyndens_obs::{ObsHandle, Registry};
//! use std::sync::Arc;
//!
//! let registry = Arc::new(Registry::new());
//! let obs = ObsHandle::new(registry.clone());
//! let applies = registry.histogram(dyndens_obs::names::SHARD_APPLY_LATENCY_US, &[("shard", "0")]);
//! applies.record(180);
//! let snap = registry.snapshot();
//! assert_eq!(snap.merged_histogram(dyndens_obs::names::SHARD_APPLY_LATENCY_US).count, 1);
//! assert!(obs.is_enabled());
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod histogram;
mod journal;
mod registry;
mod snapshot;

pub use histogram::{
    bucket_bounds, bucket_index, Histogram, HistogramSnapshot, N_BUCKETS, SUB_BUCKETS,
};
pub use journal::{
    ObsEvent, ObsRecord, RebalanceStage, SpanMark, CHATTY_RING_CAPACITY, LIFECYCLE_RING_CAPACITY,
    OBS_RECORD_MIN_ENCODED,
};
pub use registry::{Counter, Gauge, Registry};
pub use snapshot::{HistogramSample, MetricName, MetricSample, RegistrySnapshot};

use std::sync::Arc;

/// A cloneable, optional reference to a shared [`Registry`].
///
/// Subsystem configs carry one of these; the default (disabled) handle makes
/// every instrumentation site a branch on `None` — measured to keep the
/// ingest hot path within its overhead budget. Handles compare equal for
/// config-equality purposes only by enablement, not by registry identity.
#[derive(Clone, Default)]
pub struct ObsHandle {
    registry: Option<Arc<Registry>>,
}

impl std::fmt::Debug for ObsHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsHandle")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl ObsHandle {
    /// A disabled handle: all instrumentation sites become no-ops.
    pub fn none() -> Self {
        ObsHandle { registry: None }
    }

    /// A handle backed by `registry`.
    pub fn new(registry: Arc<Registry>) -> Self {
        ObsHandle {
            registry: Some(registry),
        }
    }

    /// `true` when a registry is attached.
    pub fn is_enabled(&self) -> bool {
        self.registry.is_some()
    }

    /// The attached registry, if any.
    pub fn registry(&self) -> Option<&Arc<Registry>> {
        self.registry.as_ref()
    }
}

/// The metric-name catalog: every name the DynDens subsystems register,
/// as constants so instrumentation sites, benches, CI gates and
/// `docs/OBSERVABILITY.md` cannot drift apart. Label keys are noted per
/// constant; units are in the name suffix (`_us` microseconds, `_bytes`,
/// `_total` monotone counts).
pub mod names {
    /// Counter `{shard}`: updates routed to a shard's queue (adopted from
    /// the router's hot-path cell).
    pub const SHARD_ROUTED_TOTAL: &str = "dyndens_shard_routed_total";
    /// Counter `{shard}`: micro-batches applied by the worker.
    pub const SHARD_BATCHES_APPLIED_TOTAL: &str = "dyndens_shard_batches_applied_total";
    /// Counter `{shard}`: updates applied by the worker.
    pub const SHARD_UPDATES_APPLIED_TOTAL: &str = "dyndens_shard_updates_applied_total";
    /// Histogram `{shard}`: engine apply latency per micro-batch, µs.
    pub const SHARD_APPLY_LATENCY_US: &str = "dyndens_shard_apply_latency_us";
    /// Histogram `{shard}`: updates per applied micro-batch.
    pub const SHARD_BATCH_SIZE: &str = "dyndens_shard_batch_size";
    /// Gauge `{shard}`: routed-minus-applied backlog, refreshed on
    /// `queue_depths()` probes (rebalancer cadence).
    pub const SHARD_QUEUE_DEPTH: &str = "dyndens_shard_queue_depth";

    /// Counter `{shard}`: WAL records appended.
    pub const WAL_APPENDS_TOTAL: &str = "dyndens_wal_appends_total";
    /// Counter `{shard}`: WAL payload bytes appended.
    pub const WAL_APPEND_BYTES_TOTAL: &str = "dyndens_wal_append_bytes_total";
    /// Histogram `{shard}`: WAL append (buffer + write) latency, µs.
    pub const WAL_APPEND_LATENCY_US: &str = "dyndens_wal_append_latency_us";
    /// Counter `{shard}`: `sync_data` calls issued.
    pub const WAL_FSYNCS_TOTAL: &str = "dyndens_wal_fsyncs_total";
    /// Histogram `{shard}`: `sync_data` latency, µs.
    pub const WAL_FSYNC_LATENCY_US: &str = "dyndens_wal_fsync_latency_us";
    /// Counter `{shard}`: WAL segment rotations.
    pub const WAL_ROTATIONS_TOTAL: &str = "dyndens_wal_rotations_total";
    /// Counter `{shard}`: WAL segments deleted by pruning.
    pub const WAL_SEGMENTS_PRUNED_TOTAL: &str = "dyndens_wal_segments_pruned_total";
    /// Gauge `{shard}`: live WAL segment count.
    pub const WAL_SEGMENTS: &str = "dyndens_wal_segments";
    /// Gauge `{shard}`: bytes in the active WAL segment.
    pub const WAL_SEGMENT_BYTES: &str = "dyndens_wal_segment_bytes";

    /// Counter `{shard}`: engine checkpoints written.
    pub const CHECKPOINTS_TOTAL: &str = "dyndens_checkpoints_total";
    /// Histogram `{shard}`: checkpoint serialize+write latency, µs.
    pub const CHECKPOINT_LATENCY_US: &str = "dyndens_checkpoint_latency_us";
    /// Gauge `{shard}`: size of the last checkpoint, bytes.
    pub const CHECKPOINT_BYTES: &str = "dyndens_checkpoint_bytes";

    /// Counter `{shard}`: crash recoveries performed at startup.
    pub const RECOVERIES_TOTAL: &str = "dyndens_recoveries_total";
    /// Counter `{shard}`: WAL updates replayed during recovery.
    pub const RECOVERY_REPLAYED_TOTAL: &str = "dyndens_recovery_replayed_total";

    /// Counter: shard splits committed.
    pub const SPLITS_TOTAL: &str = "dyndens_splits_total";
    /// Counter: shard merges committed.
    pub const MERGES_TOTAL: &str = "dyndens_merges_total";
    /// Histogram: split/merge ingest pause (quiesce → commit), µs.
    pub const REBALANCE_PAUSE_US: &str = "dyndens_rebalance_pause_us";
    /// Gauge: share of the observation window routed to the hottest shard,
    /// in permille, refreshed on each rebalancer probe.
    pub const REBALANCE_MAX_SHARE_PERMILLE: &str = "dyndens_rebalance_max_share_permille";
    /// Gauge: deepest queue seen by the last rebalancer probe.
    pub const REBALANCE_MAX_QUEUE_DEPTH: &str = "dyndens_rebalance_max_queue_depth";
    /// Gauge: slot chosen by the last rebalancer split decision.
    pub const REBALANCE_LAST_PICK: &str = "dyndens_rebalance_last_pick";

    /// Counter: decay-driven compaction passes completed.
    pub const COMPACTION_PASSES_TOTAL: &str = "dyndens_compaction_passes_total";
    /// Counter: fully-decayed edges evicted by compaction.
    pub const COMPACTION_EVICTED_EDGES_TOTAL: &str = "dyndens_compaction_evicted_edges_total";
    /// Counter: tracked co-occurrence pairs pruned by the stream tracker.
    pub const COMPACTION_PRUNED_PAIRS_TOTAL: &str = "dyndens_compaction_pruned_pairs_total";
    /// Counter: cancellation updates emitted for decayed pairs.
    pub const COMPACTION_CANCELLED_TOTAL: &str = "dyndens_compaction_cancelled_total";

    /// Counter `{type}`: requests served, by request type
    /// (`top_k|poll|stats|metrics|error` — `error` counts undecodable
    /// requests answered with a typed `Error` reply).
    pub const SERVE_REQUESTS_TOTAL: &str = "dyndens_serve_requests_total";
    /// Histogram `{type}`: decode→response-built latency per request, µs.
    pub const SERVE_REQUEST_LATENCY_US: &str = "dyndens_serve_request_latency_us";
    /// Counter: connections accepted.
    pub const SERVE_CONNS_ACCEPTED_TOTAL: &str = "dyndens_serve_conns_accepted_total";
    /// Counter: connections severed by I/O or framing errors.
    pub const SERVE_CONNS_SEVERED_TOTAL: &str = "dyndens_serve_conns_severed_total";
    /// Counter: `Poll` requests answered with a resync directive.
    pub const SERVE_RESYNCS_TOTAL: &str = "dyndens_serve_resyncs_total";
    /// Counter: typed `Error` replies sent.
    pub const SERVE_ERROR_REPLIES_TOTAL: &str = "dyndens_serve_error_replies_total";
    /// Counter: connections refused at accept because the server was at its
    /// `max_connections` bound.
    pub const SERVE_CONNS_REJECTED_TOTAL: &str = "dyndens_serve_conns_rejected_total";
    /// Gauge: push subscriptions currently registered (event-loop mode).
    pub const SERVE_SUBSCRIBERS: &str = "dyndens_serve_subscribers";
    /// Counter: `Push` frames enqueued to subscribers.
    pub const SERVE_PUSHES_TOTAL: &str = "dyndens_serve_pushes_total";
    /// Counter: subscribers evicted for overflowing the bounded write queue.
    pub const SERVE_SLOW_EVICTIONS_TOTAL: &str = "dyndens_serve_slow_evictions_total";
    /// Counter: event-loop wakeups (publication signals, accepts, shutdown).
    pub const SERVE_WAKEUPS_TOTAL: &str = "dyndens_serve_wakeups_total";
    /// Histogram: one publication fan-out pass over a loop's subscribers, µs.
    pub const SERVE_FANOUT_LATENCY_US: &str = "dyndens_serve_fanout_latency_us";
}
