//! Bounded structured event journal.
//!
//! Metrics answer "how much / how fast"; the journal answers "what
//! happened". It keeps a bounded ring of typed [`ObsEvent`]s with coarse
//! wall-clock timestamps and **span-style begin/end pairing**: a multi-phase
//! operation (a shard split, say) emits a `Begin` record, zero or more
//! interior records and an `End` record that all share one span id, so an
//! operator reading a [`Metrics`](crate::RegistrySnapshot) scrape can
//! reconstruct the full lifecycle of an operation that finished hours ago.
//!
//! Two rings, not one: rare **lifecycle** events (recovery, split/merge
//! phases, compaction windows) live in their own ring so chatty per-batch
//! traffic (worker batches, fsyncs, connection churn) can never push them
//! out before an operator sees them.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

use dyndens_graph::codec::{put_u32, put_u64, put_u8, ByteReader, CodecError};

/// Retained lifecycle records (recovery / split / merge / compaction).
pub const LIFECYCLE_RING_CAPACITY: usize = 256;
/// Retained chatty records (batches, fsyncs, checkpoints, connections).
pub const CHATTY_RING_CAPACITY: usize = 1024;

/// The stage of a split or merge lifecycle, mirroring the observer hooks on
/// the rebalance protocol (`SplitPhase` / `MergePhase` in `dyndens-shard`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RebalanceStage {
    /// The affected worker(s) quiesced; routing holds updates parked.
    Parked,
    /// Replacement engines rebuilt from durable state.
    Rebuilt,
    /// New routing committed; parked backlog drained.
    Committed,
}

impl RebalanceStage {
    fn to_u8(self) -> u8 {
        match self {
            RebalanceStage::Parked => 0,
            RebalanceStage::Rebuilt => 1,
            RebalanceStage::Committed => 2,
        }
    }

    fn from_u8(v: u8) -> Result<Self, CodecError> {
        match v {
            0 => Ok(RebalanceStage::Parked),
            1 => Ok(RebalanceStage::Rebuilt),
            2 => Ok(RebalanceStage::Committed),
            _ => Err(CodecError::Invalid("unknown rebalance stage")),
        }
    }
}

/// One typed observability event. Field units are in the variant docs;
/// `shard`/`slot` are worker slot indexes, `*_us` are microseconds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObsEvent {
    /// A shard worker applied one micro-batch.
    WorkerBatch {
        /// Worker slot that applied the batch.
        shard: u32,
        /// Updates in the batch.
        batch: u32,
        /// Engine apply latency for the whole batch, microseconds.
        apply_us: u64,
    },
    /// A WAL append was flushed to disk (`FsyncPolicy::Always` only).
    WalFsync {
        /// Worker slot that owns the WAL.
        shard: u32,
        /// Payload bytes in the appended record.
        bytes: u64,
        /// `File::sync_data` latency, microseconds.
        fsync_us: u64,
    },
    /// A worker wrote an engine checkpoint.
    Checkpoint {
        /// Worker slot that checkpointed.
        shard: u32,
        /// Engine sequence number captured by the checkpoint.
        seq: u64,
        /// Serialized checkpoint size, bytes.
        bytes: u64,
    },
    /// A shard recovered from durable state at startup (the journal form of
    /// `RecoveryReport`).
    Recovery {
        /// Worker slot that recovered.
        shard: u32,
        /// Sequence number of the snapshot the recovery started from.
        snapshot_seq: u64,
        /// WAL updates replayed on top of the snapshot.
        replayed_updates: u64,
        /// Sequence number after replay.
        recovered_seq: u64,
        /// `true` if a torn WAL tail was truncated during recovery.
        repaired_torn_tail: bool,
    },
    /// A phase transition of a live shard split (the journal form of
    /// `SplitPhase`, enriched at `Committed` with the `SplitReport` counts).
    SplitPhase {
        /// The slot being split.
        slot: u32,
        /// The slot the new sibling worker was assigned.
        new_slot: u32,
        /// Which phase boundary this record marks.
        stage: RebalanceStage,
        /// Updates parked while routing was frozen (known at `Committed`).
        parked: u64,
        /// WAL updates replayed into the children (known at `Committed`).
        replayed: u64,
    },
    /// A phase transition of a live shard merge (the journal form of
    /// `MergePhase`, enriched at `Committed` with the `MergeReport` counts).
    MergePhase {
        /// The surviving slot.
        slot: u32,
        /// The slot that was absorbed and freed.
        freed_slot: u32,
        /// Which phase boundary this record marks.
        stage: RebalanceStage,
        /// Updates parked while routing was frozen (known at `Committed`).
        parked: u64,
    },
    /// One decay-driven compaction window completed.
    CompactionWindow {
        /// Tracked co-occurrence pairs pruned from the stream tracker.
        pruned_pairs: u64,
        /// Cancellation updates emitted for decayed pairs.
        cancelled_updates: u64,
        /// Fully-decayed edges evicted from the engines.
        evicted_edges: u64,
        /// Disk bytes reclaimed by WAL pruning (0 when unknown).
        reclaimed_bytes: u64,
    },
    /// The serve layer accepted a client connection.
    ConnAccepted {
        /// Process-unique connection id (accept counter value).
        conn: u64,
    },
    /// A client connection was severed by an I/O or framing error (CRC
    /// mismatch, mid-frame EOF) — clean disconnects are not severs.
    ConnSevered {
        /// Process-unique connection id (accept counter value).
        conn: u64,
    },
    /// A `Poll` request fell behind delta retention and was told to resync.
    PollResync {
        /// The shard whose retention bound the cursor fell behind.
        shard: u32,
    },
    /// A connection registered a push subscription (`Subscribe` frame).
    Subscribed {
        /// Process-unique connection id (accept counter value).
        conn: u64,
    },
    /// A push subscriber was evicted because its bounded write queue
    /// overflowed (the subscriber read slower than the fan-out produced).
    SlowReaderEvicted {
        /// Process-unique connection id (accept counter value).
        conn: u64,
        /// Bytes queued for the connection at eviction time.
        queued_bytes: u64,
    },
}

impl ObsEvent {
    /// `true` for rare lifecycle events retained in their own ring
    /// (recovery, split/merge phases, compaction windows).
    pub fn is_lifecycle(&self) -> bool {
        matches!(
            self,
            ObsEvent::Recovery { .. }
                | ObsEvent::SplitPhase { .. }
                | ObsEvent::MergePhase { .. }
                | ObsEvent::CompactionWindow { .. }
        )
    }

    /// Stable event-kind name, used by the text exposition and docs.
    pub fn kind(&self) -> &'static str {
        match self {
            ObsEvent::WorkerBatch { .. } => "worker_batch",
            ObsEvent::WalFsync { .. } => "wal_fsync",
            ObsEvent::Checkpoint { .. } => "checkpoint",
            ObsEvent::Recovery { .. } => "recovery",
            ObsEvent::SplitPhase { .. } => "split_phase",
            ObsEvent::MergePhase { .. } => "merge_phase",
            ObsEvent::CompactionWindow { .. } => "compaction_window",
            ObsEvent::ConnAccepted { .. } => "conn_accepted",
            ObsEvent::ConnSevered { .. } => "conn_severed",
            ObsEvent::PollResync { .. } => "poll_resync",
            ObsEvent::Subscribed { .. } => "subscribed",
            ObsEvent::SlowReaderEvicted { .. } => "slow_reader_evicted",
        }
    }

    /// Encodes the event as `tag u8 | fields` (graph codec conventions).
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        match *self {
            ObsEvent::WorkerBatch {
                shard,
                batch,
                apply_us,
            } => {
                put_u8(buf, 1);
                put_u32(buf, shard);
                put_u32(buf, batch);
                put_u64(buf, apply_us);
            }
            ObsEvent::WalFsync {
                shard,
                bytes,
                fsync_us,
            } => {
                put_u8(buf, 2);
                put_u32(buf, shard);
                put_u64(buf, bytes);
                put_u64(buf, fsync_us);
            }
            ObsEvent::Checkpoint { shard, seq, bytes } => {
                put_u8(buf, 3);
                put_u32(buf, shard);
                put_u64(buf, seq);
                put_u64(buf, bytes);
            }
            ObsEvent::Recovery {
                shard,
                snapshot_seq,
                replayed_updates,
                recovered_seq,
                repaired_torn_tail,
            } => {
                put_u8(buf, 4);
                put_u32(buf, shard);
                put_u64(buf, snapshot_seq);
                put_u64(buf, replayed_updates);
                put_u64(buf, recovered_seq);
                put_u8(buf, repaired_torn_tail as u8);
            }
            ObsEvent::SplitPhase {
                slot,
                new_slot,
                stage,
                parked,
                replayed,
            } => {
                put_u8(buf, 5);
                put_u32(buf, slot);
                put_u32(buf, new_slot);
                put_u8(buf, stage.to_u8());
                put_u64(buf, parked);
                put_u64(buf, replayed);
            }
            ObsEvent::MergePhase {
                slot,
                freed_slot,
                stage,
                parked,
            } => {
                put_u8(buf, 6);
                put_u32(buf, slot);
                put_u32(buf, freed_slot);
                put_u8(buf, stage.to_u8());
                put_u64(buf, parked);
            }
            ObsEvent::CompactionWindow {
                pruned_pairs,
                cancelled_updates,
                evicted_edges,
                reclaimed_bytes,
            } => {
                put_u8(buf, 7);
                put_u64(buf, pruned_pairs);
                put_u64(buf, cancelled_updates);
                put_u64(buf, evicted_edges);
                put_u64(buf, reclaimed_bytes);
            }
            ObsEvent::ConnAccepted { conn } => {
                put_u8(buf, 8);
                put_u64(buf, conn);
            }
            ObsEvent::ConnSevered { conn } => {
                put_u8(buf, 9);
                put_u64(buf, conn);
            }
            ObsEvent::PollResync { shard } => {
                put_u8(buf, 10);
                put_u32(buf, shard);
            }
            ObsEvent::Subscribed { conn } => {
                put_u8(buf, 11);
                put_u64(buf, conn);
            }
            ObsEvent::SlowReaderEvicted { conn, queued_bytes } => {
                put_u8(buf, 12);
                put_u64(buf, conn);
                put_u64(buf, queued_bytes);
            }
        }
    }

    /// Decodes one event; the inverse of [`ObsEvent::encode_into`]. Unknown
    /// tags and out-of-range discriminants are rejected, never panicked on.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<ObsEvent, CodecError> {
        Ok(match r.u8()? {
            1 => ObsEvent::WorkerBatch {
                shard: r.u32()?,
                batch: r.u32()?,
                apply_us: r.u64()?,
            },
            2 => ObsEvent::WalFsync {
                shard: r.u32()?,
                bytes: r.u64()?,
                fsync_us: r.u64()?,
            },
            3 => ObsEvent::Checkpoint {
                shard: r.u32()?,
                seq: r.u64()?,
                bytes: r.u64()?,
            },
            4 => ObsEvent::Recovery {
                shard: r.u32()?,
                snapshot_seq: r.u64()?,
                replayed_updates: r.u64()?,
                recovered_seq: r.u64()?,
                repaired_torn_tail: match r.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(CodecError::Invalid("recovery bool out of range")),
                },
            },
            5 => ObsEvent::SplitPhase {
                slot: r.u32()?,
                new_slot: r.u32()?,
                stage: RebalanceStage::from_u8(r.u8()?)?,
                parked: r.u64()?,
                replayed: r.u64()?,
            },
            6 => ObsEvent::MergePhase {
                slot: r.u32()?,
                freed_slot: r.u32()?,
                stage: RebalanceStage::from_u8(r.u8()?)?,
                parked: r.u64()?,
            },
            7 => ObsEvent::CompactionWindow {
                pruned_pairs: r.u64()?,
                cancelled_updates: r.u64()?,
                evicted_edges: r.u64()?,
                reclaimed_bytes: r.u64()?,
            },
            8 => ObsEvent::ConnAccepted { conn: r.u64()? },
            9 => ObsEvent::ConnSevered { conn: r.u64()? },
            10 => ObsEvent::PollResync { shard: r.u32()? },
            11 => ObsEvent::Subscribed { conn: r.u64()? },
            12 => ObsEvent::SlowReaderEvicted {
                conn: r.u64()?,
                queued_bytes: r.u64()?,
            },
            _ => return Err(CodecError::Invalid("unknown obs event tag")),
        })
    }
}

/// How a record relates to a span: a standalone instant, the opening record
/// of a span, or its closing record. Interior records of an open span are
/// emitted as `Instant` with the span's id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanMark {
    /// A standalone event (or an interior record of an open span).
    Instant,
    /// Opens a span; later records with the same span id belong to it.
    Begin,
    /// Closes a span.
    End,
}

impl SpanMark {
    fn to_u8(self) -> u8 {
        match self {
            SpanMark::Instant => 0,
            SpanMark::Begin => 1,
            SpanMark::End => 2,
        }
    }

    fn from_u8(v: u8) -> Result<Self, CodecError> {
        match v {
            0 => Ok(SpanMark::Instant),
            1 => Ok(SpanMark::Begin),
            2 => Ok(SpanMark::End),
            _ => Err(CodecError::Invalid("unknown span mark")),
        }
    }
}

/// One journal record: a monotone process-wide sequence number, a coarse
/// wall-clock timestamp, the span id (0 for spanless instants) and the
/// typed event payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsRecord {
    /// Monotone emission order across both rings.
    pub seq: u64,
    /// Milliseconds since the UNIX epoch at emission (coarse: reading the
    /// clock once per event, not per field).
    pub at_unix_ms: u64,
    /// Span id shared by the records of one multi-phase operation; 0 when
    /// the record belongs to no span.
    pub span: u64,
    /// The record's relation to its span.
    pub mark: SpanMark,
    /// The typed payload.
    pub event: ObsEvent,
}

/// Minimum encoded size of an [`ObsRecord`]: three `u64`, the mark byte, and
/// the smallest event body (tag + one `u32`). Used as the allocation guard
/// unit when decoding event lists.
pub const OBS_RECORD_MIN_ENCODED: usize = 8 + 8 + 8 + 1 + 1 + 4;

impl ObsRecord {
    /// Encodes `seq | at_unix_ms | span | mark | event`.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        put_u64(buf, self.seq);
        put_u64(buf, self.at_unix_ms);
        put_u64(buf, self.span);
        put_u8(buf, self.mark.to_u8());
        self.event.encode_into(buf);
    }

    /// Decodes one record; the inverse of [`ObsRecord::encode_into`].
    pub fn decode(r: &mut ByteReader<'_>) -> Result<ObsRecord, CodecError> {
        Ok(ObsRecord {
            seq: r.u64()?,
            at_unix_ms: r.u64()?,
            span: r.u64()?,
            mark: SpanMark::from_u8(r.u8()?)?,
            event: ObsEvent::decode(r)?,
        })
    }
}

/// The two bounded rings plus the shared sequence counter.
pub(crate) struct Journal {
    seq: AtomicU64,
    lifecycle: Mutex<VecDeque<ObsRecord>>,
    chatty: Mutex<VecDeque<ObsRecord>>,
}

impl Journal {
    pub(crate) fn new() -> Self {
        Journal {
            seq: AtomicU64::new(0),
            lifecycle: Mutex::new(VecDeque::with_capacity(LIFECYCLE_RING_CAPACITY)),
            chatty: Mutex::new(VecDeque::with_capacity(CHATTY_RING_CAPACITY)),
        }
    }

    pub(crate) fn push(&self, span: u64, mark: SpanMark, event: ObsEvent) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let at_unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis().min(u64::MAX as u128) as u64)
            .unwrap_or(0);
        let (ring, cap) = if event.is_lifecycle() {
            (&self.lifecycle, LIFECYCLE_RING_CAPACITY)
        } else {
            (&self.chatty, CHATTY_RING_CAPACITY)
        };
        let record = ObsRecord {
            seq,
            at_unix_ms,
            span,
            mark,
            event,
        };
        let mut ring = ring.lock().expect("journal ring poisoned");
        if ring.len() == cap {
            ring.pop_front();
        }
        ring.push_back(record);
    }

    /// Both rings merged, ascending by emission sequence.
    pub(crate) fn recent(&self) -> Vec<ObsRecord> {
        let mut out: Vec<ObsRecord> = {
            let life = self.lifecycle.lock().expect("journal ring poisoned");
            life.iter().cloned().collect()
        };
        {
            let chatty = self.chatty.lock().expect("journal ring poisoned");
            out.extend(chatty.iter().cloned());
        }
        out.sort_by_key(|r| r.seq);
        out
    }
}
