//! Log-linear latency/size histograms (HDR-style fixed bucket layout).
//!
//! A [`Histogram`] records `u64` values (microseconds, bytes, batch sizes)
//! into a fixed array of lock-free buckets. The layout is *log-linear*: each
//! power-of-two octave `[2^e, 2^(e+1))` is divided into [`SUB_BUCKETS`]
//! equal-width linear sub-buckets, so the relative quantisation error is
//! bounded by `1/SUB_BUCKETS` (~3.1%) at any magnitude, while values below
//! [`SUB_BUCKETS`] are recorded exactly. The bucket layout is **fixed** —
//! identical for every histogram in every process — which makes snapshots
//! mergeable across shards and across machines by bucket-wise addition.
//!
//! Recording is three relaxed `fetch_add`s (bucket, count, sum): safe to call
//! from the ingest hot path. Reading is done through an owned
//! [`HistogramSnapshot`], which carries only the non-empty buckets and
//! answers exact-rank percentile queries (p50/p99/p999) against the recorded
//! distribution.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of linear sub-buckets per power-of-two octave (2^5).
pub const SUB_BUCKETS: u64 = 32;

/// Total number of buckets: indexes `0..SUB_BUCKETS` hold exact values, and
/// each of the 59 remaining octaves (`2^5 ..= 2^63`) contributes
/// [`SUB_BUCKETS`] sub-buckets. Index `N_BUCKETS - 1` holds `u64::MAX`.
pub const N_BUCKETS: usize = 60 * SUB_BUCKETS as usize;

/// Maps a recorded value to its bucket index. Total and monotone: every
/// `u64` maps to exactly one index in `0..N_BUCKETS`, and larger values never
/// map to smaller indexes.
pub fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS {
        value as usize
    } else {
        // Highest set bit e >= 5; octave group g >= 1; the top 5 bits below
        // the leading bit select the linear sub-bucket within the octave.
        let e = 63 - value.leading_zeros() as u64;
        let g = e - 4;
        (g * SUB_BUCKETS + ((value >> (e - 5)) - SUB_BUCKETS)) as usize
    }
}

/// Inclusive `(lower, upper)` value bounds of bucket `index`.
///
/// Buckets below [`SUB_BUCKETS`] are exact (`lower == upper`); bucket
/// `N_BUCKETS - 1` ends at `u64::MAX`.
///
/// # Panics
///
/// Panics if `index >= N_BUCKETS`.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < N_BUCKETS, "bucket index {index} out of range");
    let i = index as u64;
    if i < SUB_BUCKETS {
        (i, i)
    } else {
        let g = i / SUB_BUCKETS;
        let sub = i % SUB_BUCKETS;
        let width = 1u64 << (g - 1);
        let lower = (SUB_BUCKETS + sub) << (g - 1);
        (lower, lower + (width - 1))
    }
}

pub(crate) struct HistogramCore {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistogramCore {
    fn new() -> Self {
        let mut buckets = Vec::with_capacity(N_BUCKETS);
        buckets.resize_with(N_BUCKETS, || AtomicU64::new(0));
        HistogramCore {
            buckets: buckets.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// A shareable handle to one lock-free histogram. Cloning is cheap (an `Arc`
/// bump); all clones record into the same buckets.
#[derive(Clone)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.core.count.load(Ordering::Relaxed))
            .finish()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates a detached histogram (not registered anywhere). Registered
    /// histograms are obtained from [`Registry::histogram`](crate::Registry::histogram).
    pub fn new() -> Self {
        Histogram {
            core: Arc::new(HistogramCore::new()),
        }
    }

    /// Records one value. Three relaxed atomic adds; never blocks.
    pub fn record(&self, value: u64) {
        self.core.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.core.count.fetch_add(1, Ordering::Relaxed);
        self.core.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`] in whole microseconds.
    pub fn record_micros(&self, elapsed: std::time::Duration) {
        self.record(elapsed.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }

    /// Captures an owned, mergeable snapshot of the current distribution.
    ///
    /// Concurrent recorders may land between the bucket reads, so `count` is
    /// re-derived from the bucket sums to keep the snapshot internally
    /// consistent (ranks always resolve to a bucket).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        let mut count = 0u64;
        for (i, b) in self.core.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push((i as u32, n));
                count += n;
            }
        }
        HistogramSnapshot {
            count,
            sum: self.core.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// An owned point-in-time view of a [`Histogram`]: total count, value sum,
/// and the sparse list of non-empty `(bucket index, count)` pairs, sorted by
/// index. Snapshots from different shards (or machines) merge losslessly
/// because every histogram shares the same fixed bucket layout.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total number of recorded values.
    pub count: u64,
    /// Sum of all recorded values (wrapping on overflow is not handled; the
    /// instrumented quantities — microseconds, bytes — stay far below 2^64).
    pub sum: u64,
    /// Non-empty buckets as `(index, count)`, strictly ascending by index.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// `true` if no values were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean recorded value, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest possible recorded value: the inclusive upper bound of the
    /// highest non-empty bucket (0 when empty).
    pub fn max(&self) -> u64 {
        match self.buckets.last() {
            Some(&(i, _)) => bucket_bounds(i as usize).1,
            None => 0,
        }
    }

    /// Value at percentile `p` (`0.0 ..= 100.0`), computed by exact rank
    /// walk over the buckets; returns the inclusive upper bound of the
    /// bucket holding that rank (exact for values below [`SUB_BUCKETS`],
    /// within ~3.1% otherwise). Returns 0 for an empty snapshot.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for &(i, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bucket_bounds(i as usize).1;
            }
        }
        // Unreachable when counts are consistent; fall back to the max.
        self.max()
    }

    /// Adds `other`'s distribution into `self` (bucket-wise). Merging is
    /// commutative and associative, so per-shard snapshots can be combined
    /// in any order into a fleet-wide distribution.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        let mut merged = Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ia, na)), Some(&&(ib, nb))) => {
                    if ia == ib {
                        merged.push((ia, na + nb));
                        a.next();
                        b.next();
                    } else if ia < ib {
                        merged.push((ia, na));
                        a.next();
                    } else {
                        merged.push((ib, nb));
                        b.next();
                    }
                }
                (Some(&&x), None) => {
                    merged.push(x);
                    a.next();
                }
                (None, Some(&&x)) => {
                    merged.push(x);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.buckets = merged;
    }
}
