//! Owned registry snapshots: wire codec and Prometheus-style text
//! exposition.
//!
//! A [`RegistrySnapshot`] is the unit of scraping. It travels two ways:
//!
//! * **binary**, via [`RegistrySnapshot::encode_into`] /
//!   [`RegistrySnapshot::decode`] — the payload of the serve protocol's
//!   `Metrics` response, following the `dyndens-graph` codec conventions
//!   (little-endian fixed-width primitives, explicit counts, decoding that
//!   rejects malformed input instead of panicking);
//! * **text**, via [`RegistrySnapshot::to_prometheus`] — a
//!   Prometheus-exposition-style rendering (`# TYPE` comments, cumulative
//!   `_bucket{le=...}` lines, `_sum`/`_count`) for offline scrapes and
//!   humans. Journal events have no Prometheus form and are omitted there.

use dyndens_graph::codec::{put_str, put_u32, put_u64, put_u8, ByteReader, CodecError};

use crate::histogram::{bucket_bounds, HistogramSnapshot, N_BUCKETS};
use crate::journal::{ObsRecord, OBS_RECORD_MIN_ENCODED};

/// A metric identity: a name plus sorted `(key, value)` label pairs.
/// Ordering (name, then labels) defines the canonical encode order.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricName {
    /// The metric name, e.g. `dyndens_wal_appends_total`.
    pub name: String,
    /// Label pairs, sorted by key, e.g. `[("shard", "0")]`.
    pub labels: Vec<(String, String)>,
}

impl MetricName {
    /// Builds a metric name, sorting the labels into canonical order.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricName {
            name: name.to_string(),
            labels,
        }
    }

    /// Value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn encode_into(&self, buf: &mut Vec<u8>) {
        put_str(buf, &self.name);
        put_u8(buf, self.labels.len().min(255) as u8);
        for (k, v) in self.labels.iter().take(255) {
            put_str(buf, k);
            put_str(buf, v);
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<MetricName, CodecError> {
        let name = r.str()?.to_string();
        let n_labels = r.u8()? as usize;
        let mut labels = Vec::with_capacity(n_labels);
        for _ in 0..n_labels {
            let k = r.str()?.to_string();
            let v = r.str()?.to_string();
            labels.push((k, v));
        }
        Ok(MetricName { name, labels })
    }
}

impl std::fmt::Display for MetricName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name)?;
        if !self.labels.is_empty() {
            write!(f, "{{")?;
            for (i, (k, v)) in self.labels.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{k}=\"{}\"", escape_label(v))?;
            }
            write!(f, "}}")?;
        }
        Ok(())
    }
}

/// One sampled counter or gauge: identity plus current value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricSample {
    /// The metric identity.
    pub name: MetricName,
    /// The sampled value.
    pub value: u64,
}

/// One sampled histogram: identity plus its sparse bucket snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSample {
    /// The metric identity.
    pub name: MetricName,
    /// The sampled distribution.
    pub hist: HistogramSnapshot,
}

/// An owned point-in-time capture of a whole [`Registry`](crate::Registry):
/// every counter, gauge and histogram (sorted by [`MetricName`]) plus the
/// retained journal records.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegistrySnapshot {
    /// All counters, sorted by identity.
    pub counters: Vec<MetricSample>,
    /// All gauges, sorted by identity.
    pub gauges: Vec<MetricSample>,
    /// All histograms, sorted by identity.
    pub histograms: Vec<HistogramSample>,
    /// Retained journal records, ascending by emission order.
    pub events: Vec<ObsRecord>,
}

/// Smallest encoded [`MetricSample`]: empty name (4-byte length), zero-label
/// count, 8-byte value.
const METRIC_SAMPLE_MIN_ENCODED: usize = 4 + 1 + 8;
/// Smallest encoded [`HistogramSample`]: empty name, count, sum, zero-bucket
/// count.
const HISTOGRAM_SAMPLE_MIN_ENCODED: usize = 4 + 1 + 8 + 8 + 4;
/// Encoded size of one `(bucket index, count)` pair.
const BUCKET_ENCODED: usize = 4 + 8;

/// Allocation guard shared by every count-prefixed list in the snapshot
/// codec: a hostile length must not allocate more than the bytes actually
/// present can justify.
fn guard_count(r: &ByteReader<'_>, count: usize, min_encoded: usize) -> Result<(), CodecError> {
    if count.saturating_mul(min_encoded) > r.remaining() {
        return Err(CodecError::Truncated {
            needed: count.saturating_mul(min_encoded),
            available: r.remaining(),
        });
    }
    Ok(())
}

impl RegistrySnapshot {
    /// Encodes the snapshot:
    /// `n_counters u32 | samples | n_gauges u32 | samples |
    ///  n_histograms u32 | samples | n_events u32 | records`,
    /// where a sample is `name | value u64` (or `name | count u64 | sum u64 |
    /// n_buckets u32 | (index u32, count u64)*` for histograms) and a name is
    /// `str | n_labels u8 | (str, str)*`.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        put_u32(buf, self.counters.len() as u32);
        for s in &self.counters {
            s.name.encode_into(buf);
            put_u64(buf, s.value);
        }
        put_u32(buf, self.gauges.len() as u32);
        for s in &self.gauges {
            s.name.encode_into(buf);
            put_u64(buf, s.value);
        }
        put_u32(buf, self.histograms.len() as u32);
        for s in &self.histograms {
            s.name.encode_into(buf);
            put_u64(buf, s.hist.count);
            put_u64(buf, s.hist.sum);
            put_u32(buf, s.hist.buckets.len() as u32);
            for &(i, n) in &s.hist.buckets {
                put_u32(buf, i);
                put_u64(buf, n);
            }
        }
        put_u32(buf, self.events.len() as u32);
        for e in &self.events {
            e.encode_into(buf);
        }
    }

    /// Decodes a snapshot; the inverse of [`RegistrySnapshot::encode_into`].
    /// Every count is allocation-guarded against the remaining input, and
    /// histogram bucket lists must be strictly ascending with indexes below
    /// [`N_BUCKETS`] — truncated, corrupt or hostile input is rejected with
    /// a [`CodecError`], never panicked on.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<RegistrySnapshot, CodecError> {
        let n_counters = r.u32()? as usize;
        guard_count(r, n_counters, METRIC_SAMPLE_MIN_ENCODED)?;
        let mut counters = Vec::with_capacity(n_counters);
        for _ in 0..n_counters {
            let name = MetricName::decode(r)?;
            let value = r.u64()?;
            counters.push(MetricSample { name, value });
        }
        let n_gauges = r.u32()? as usize;
        guard_count(r, n_gauges, METRIC_SAMPLE_MIN_ENCODED)?;
        let mut gauges = Vec::with_capacity(n_gauges);
        for _ in 0..n_gauges {
            let name = MetricName::decode(r)?;
            let value = r.u64()?;
            gauges.push(MetricSample { name, value });
        }
        let n_histograms = r.u32()? as usize;
        guard_count(r, n_histograms, HISTOGRAM_SAMPLE_MIN_ENCODED)?;
        let mut histograms = Vec::with_capacity(n_histograms);
        for _ in 0..n_histograms {
            let name = MetricName::decode(r)?;
            let count = r.u64()?;
            let sum = r.u64()?;
            let n_buckets = r.u32()? as usize;
            guard_count(r, n_buckets, BUCKET_ENCODED)?;
            let mut buckets = Vec::with_capacity(n_buckets);
            let mut prev: Option<u32> = None;
            for _ in 0..n_buckets {
                let i = r.u32()?;
                let n = r.u64()?;
                if i as usize >= N_BUCKETS {
                    return Err(CodecError::Invalid("histogram bucket index out of range"));
                }
                if prev.is_some_and(|p| i <= p) {
                    return Err(CodecError::Invalid("histogram buckets not ascending"));
                }
                prev = Some(i);
                buckets.push((i, n));
            }
            histograms.push(HistogramSample {
                name,
                hist: HistogramSnapshot {
                    count,
                    sum,
                    buckets,
                },
            });
        }
        let n_events = r.u32()? as usize;
        guard_count(r, n_events, OBS_RECORD_MIN_ENCODED)?;
        let mut events = Vec::with_capacity(n_events);
        for _ in 0..n_events {
            events.push(ObsRecord::decode(r)?);
        }
        Ok(RegistrySnapshot {
            counters,
            gauges,
            histograms,
            events,
        })
    }

    /// Sum of every counter named `name`, across all label sets. Convenience
    /// for consistency gates (`wal appends == applied batches`).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|s| s.name.name == name)
            .map(|s| s.value)
            .sum()
    }

    /// The counter with exactly `(name, labels)`, if present.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let key = MetricName::new(name, labels);
        self.counters
            .iter()
            .find(|s| s.name == key)
            .map(|s| s.value)
    }

    /// The gauge with exactly `(name, labels)`, if present.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let key = MetricName::new(name, labels);
        self.gauges.iter().find(|s| s.name == key).map(|s| s.value)
    }

    /// All histograms named `name` merged across label sets (e.g. per-shard
    /// apply latencies folded into one fleet-wide distribution). Empty when
    /// no histogram has that name.
    pub fn merged_histogram(&self, name: &str) -> HistogramSnapshot {
        let mut merged = HistogramSnapshot::default();
        for s in self.histograms.iter().filter(|s| s.name.name == name) {
            merged.merge(&s.hist);
        }
        merged
    }

    /// Renders the metric sections in Prometheus text exposition style.
    ///
    /// Counters and gauges render as `name{labels} value`; a histogram
    /// renders its non-empty buckets cumulatively as
    /// `name_bucket{labels,le="<upper>"}` followed by `le="+Inf"`, then
    /// `name_sum` and `name_count`. A `# TYPE` comment precedes each metric
    /// family. Journal events have no text form.
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut prev: Option<String> = None;
        for s in &self.counters {
            if prev.as_deref() != Some(s.name.name.as_str()) {
                let _ = writeln!(out, "# TYPE {} counter", s.name.name);
                prev = Some(s.name.name.clone());
            }
            let _ = writeln!(out, "{} {}", s.name, s.value);
        }
        let mut prev: Option<String> = None;
        for s in &self.gauges {
            if prev.as_deref() != Some(s.name.name.as_str()) {
                let _ = writeln!(out, "# TYPE {} gauge", s.name.name);
                prev = Some(s.name.name.clone());
            }
            let _ = writeln!(out, "{} {}", s.name, s.value);
        }
        let mut prev: Option<String> = None;
        for s in &self.histograms {
            if prev.as_deref() != Some(s.name.name.as_str()) {
                let _ = writeln!(out, "# TYPE {} histogram", s.name.name);
                prev = Some(s.name.name.clone());
            }
            let mut cumulative = 0u64;
            for &(i, n) in &s.hist.buckets {
                cumulative += n;
                let upper = bucket_bounds(i as usize).1;
                let _ = writeln!(
                    out,
                    "{}_bucket{} {cumulative}",
                    s.name.name,
                    labels_with_le(&s.name, &upper.to_string())
                );
            }
            let _ = writeln!(
                out,
                "{}_bucket{} {}",
                s.name.name,
                labels_with_le(&s.name, "+Inf"),
                s.hist.count
            );
            let _ = writeln!(
                out,
                "{}_sum{} {}",
                s.name.name,
                labels_only(&s.name),
                s.hist.sum
            );
            let _ = writeln!(
                out,
                "{}_count{} {}",
                s.name.name,
                labels_only(&s.name),
                s.hist.count
            );
        }
        out
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn labels_only(name: &MetricName) -> String {
    if name.labels.is_empty() {
        String::new()
    } else {
        let inner: Vec<String> = name
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
            .collect();
        format!("{{{}}}", inner.join(","))
    }
}

fn labels_with_le(name: &MetricName, le: &str) -> String {
    let mut inner: Vec<String> = name
        .labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    inner.push(format!("le=\"{le}\""));
    format!("{{{}}}", inner.join(","))
}
