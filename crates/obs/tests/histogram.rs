//! Histogram unit suite: bucket boundary exactness, merge associativity,
//! empty/percentile edge cases. (The wire-codec proptests live with the
//! serve protocol suite in `crates/serve/tests/wire_roundtrip.rs`, which
//! round-trips whole `Metrics` messages.)

use dyndens_obs::{
    bucket_bounds, bucket_index, Histogram, HistogramSnapshot, N_BUCKETS, SUB_BUCKETS,
};

#[test]
fn bucket_index_is_total_and_monotone_at_boundaries() {
    // Every octave boundary and its neighbours map in order; the map is
    // total over the extremes.
    let mut last = 0usize;
    for e in 0..64u32 {
        let v = 1u64 << e;
        for probe in [v.saturating_sub(1), v, v.saturating_add(1)] {
            let i = bucket_index(probe);
            assert!(i < N_BUCKETS, "index out of range for {probe}");
            assert!(i >= last || probe < 1u64 << e, "non-monotone at {probe}");
            last = last.max(i);
        }
    }
    assert_eq!(bucket_index(0), 0);
    assert_eq!(bucket_index(u64::MAX), N_BUCKETS - 1);
}

#[test]
fn bucket_bounds_partition_the_u64_line() {
    // Bounds tile the line: each bucket starts right after the previous one
    // ends, bucket 0 starts at 0, the last ends at u64::MAX.
    assert_eq!(bucket_bounds(0), (0, 0));
    assert_eq!(bucket_bounds(N_BUCKETS - 1).1, u64::MAX);
    for i in 1..N_BUCKETS {
        let (lo, _) = bucket_bounds(i);
        let (_, prev_hi) = bucket_bounds(i - 1);
        assert_eq!(lo, prev_hi + 1, "gap or overlap at bucket {i}");
    }
}

#[test]
fn values_fall_inside_their_buckets_and_small_values_are_exact() {
    // Round-trip: index(v) must yield a bucket whose bounds contain v.
    let mut probes: Vec<u64> = (0..200).collect();
    for e in 5..64u32 {
        let v = 1u64 << e;
        probes.extend([v - 1, v, v + 1, v + v / 3, v + v / 2]);
    }
    probes.push(u64::MAX);
    for v in probes {
        let (lo, hi) = bucket_bounds(bucket_index(v));
        assert!(lo <= v && v <= hi, "{v} outside bucket [{lo}, {hi}]");
        if v < SUB_BUCKETS {
            assert_eq!((lo, hi), (v, v), "small values must be exact");
        }
    }
}

#[test]
fn relative_error_is_bounded() {
    // Bucket width / lower bound <= 1/SUB_BUCKETS for every bucket above
    // the exact range.
    for i in SUB_BUCKETS as usize..N_BUCKETS {
        let (lo, hi) = bucket_bounds(i);
        let width = hi - lo + 1;
        assert!(
            (width as f64) / (lo as f64) <= 1.0 / SUB_BUCKETS as f64 + 1e-12,
            "bucket {i}: width {width} too wide for lower bound {lo}"
        );
    }
}

#[test]
fn empty_snapshot_edge_cases() {
    let h = Histogram::new();
    let s = h.snapshot();
    assert!(s.is_empty());
    assert_eq!(s.percentile(50.0), 0);
    assert_eq!(s.percentile(99.9), 0);
    assert_eq!(s.max(), 0);
    assert_eq!(s.mean(), 0.0);
}

#[test]
fn exact_percentiles_below_sub_buckets() {
    // 1..=20 recorded once each: percentiles are exact order statistics
    // (upper-bound convention == the value itself in the exact range).
    let h = Histogram::new();
    for v in 1..=20u64 {
        h.record(v);
    }
    let s = h.snapshot();
    assert_eq!(s.count, 20);
    assert_eq!(s.sum, 210);
    assert_eq!(s.percentile(0.0), 1); // rank clamps to 1
    assert_eq!(s.percentile(5.0), 1);
    assert_eq!(s.percentile(50.0), 10);
    assert_eq!(s.percentile(95.0), 19);
    assert_eq!(s.percentile(100.0), 20);
    assert_eq!(s.max(), 20);
    assert_eq!(s.mean(), 10.5);
}

#[test]
fn single_value_snapshot() {
    let h = Histogram::new();
    h.record(7);
    let s = h.snapshot();
    for p in [0.0, 50.0, 99.0, 99.9, 100.0] {
        assert_eq!(s.percentile(p), 7);
    }
}

#[test]
fn p999_separates_a_heavy_tail() {
    // 10_000 fast values and 5 slow outliers: p99 stays in the fast band,
    // p99.9 lands within the histogram's ~3.1% of the outlier magnitude.
    let h = Histogram::new();
    for _ in 0..10_000 {
        h.record(100);
    }
    for _ in 0..5 {
        h.record(1_000_000);
    }
    let s = h.snapshot();
    let p99 = s.percentile(99.0);
    let p999 = s.percentile(99.96);
    assert!(p99 <= 104, "p99 {p99} should sit in the fast band");
    assert!(
        (970_000..=1_040_000).contains(&p999),
        "p99.96 {p999} should land on the outliers"
    );
}

#[test]
fn merge_is_commutative_and_associative() {
    let mk = |values: &[u64]| {
        let h = Histogram::new();
        for &v in values {
            h.record(v);
        }
        h.snapshot()
    };
    let a = mk(&[1, 5, 5, 90, 4096]);
    let b = mk(&[5, 33, 70_000]);
    let c = mk(&[0, 1, u64::MAX]);

    let mut ab = a.clone();
    ab.merge(&b);
    let mut ba = b.clone();
    ba.merge(&a);
    assert_eq!(ab, ba, "merge must be commutative");

    let mut ab_c = ab.clone();
    ab_c.merge(&c);
    let mut bc = b.clone();
    bc.merge(&c);
    let mut a_bc = a.clone();
    a_bc.merge(&bc);
    assert_eq!(ab_c, a_bc, "merge must be associative");

    // The merged snapshot equals recording everything into one histogram.
    let all = mk(&[1, 5, 5, 90, 4096, 5, 33, 70_000, 0, 1, u64::MAX]);
    assert_eq!(ab_c, all, "merge must equal single-histogram recording");
}

#[test]
fn merge_with_empty_is_identity() {
    let h = Histogram::new();
    h.record(42);
    let s = h.snapshot();
    let mut merged = s.clone();
    merged.merge(&HistogramSnapshot::default());
    assert_eq!(merged, s);
    let mut from_empty = HistogramSnapshot::default();
    from_empty.merge(&s);
    assert_eq!(from_empty, s);
}

#[test]
fn percentiles_respect_bucket_upper_bound_convention() {
    // A value in the log-linear range reports its bucket's inclusive upper
    // bound, never more than ~3.1% above the recorded value.
    let h = Histogram::new();
    h.record(1000);
    let s = h.snapshot();
    let p = s.percentile(50.0);
    assert!(p >= 1000, "upper-bound convention never under-reports");
    assert!((p as f64) <= 1000.0 * 1.033, "p50 {p} exceeds error bound");
}
