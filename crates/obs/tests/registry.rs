//! Registry, journal and snapshot behaviour: interning, adoption, span
//! pairing, ring bounds, codec round-trip and truncation rejection, and the
//! text exposition's line grammar.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dyndens_graph::codec::ByteReader;
use dyndens_obs::{
    names, ObsEvent, RebalanceStage, Registry, RegistrySnapshot, SpanMark, LIFECYCLE_RING_CAPACITY,
};

#[test]
fn handles_are_interned_by_name_and_labels() {
    let r = Registry::new();
    let a = r.counter("c", &[("shard", "0")]);
    let b = r.counter("c", &[("shard", "0")]);
    let other = r.counter("c", &[("shard", "1")]);
    a.inc();
    b.add(2);
    other.inc();
    let snap = r.snapshot();
    assert_eq!(snap.counter("c", &[("shard", "0")]), Some(3));
    assert_eq!(snap.counter("c", &[("shard", "1")]), Some(1));
    assert_eq!(snap.counter_total("c"), 4);
}

#[test]
fn label_order_does_not_matter() {
    let r = Registry::new();
    r.counter("c", &[("a", "1"), ("b", "2")]).inc();
    let snap = r.snapshot();
    assert_eq!(snap.counter("c", &[("b", "2"), ("a", "1")]), Some(1));
}

#[test]
#[should_panic(expected = "already registered")]
fn kind_mismatch_panics() {
    let r = Registry::new();
    let _ = r.counter("same", &[]);
    let _ = r.gauge("same", &[]);
}

#[test]
fn adopted_cells_are_read_through_and_replaceable() {
    let r = Registry::new();
    let cell = Arc::new(AtomicU64::new(7));
    r.adopt_counter("adopted", &[("shard", "0")], cell.clone());
    cell.fetch_add(5, Ordering::Relaxed);
    assert_eq!(r.snapshot().counter("adopted", &[("shard", "0")]), Some(12));
    // Re-adoption (the split path swapping the routed cell) replaces it.
    let newer = Arc::new(AtomicU64::new(100));
    r.adopt_counter("adopted", &[("shard", "0")], newer);
    assert_eq!(
        r.snapshot().counter("adopted", &[("shard", "0")]),
        Some(100)
    );
    r.unregister("adopted", &[("shard", "0")]);
    assert_eq!(r.snapshot().counter("adopted", &[("shard", "0")]), None);
}

#[test]
fn spans_pair_begin_and_end_and_lifecycle_survives_chatty_floods() {
    let r = Registry::new();
    let span = r.begin(ObsEvent::SplitPhase {
        slot: 0,
        new_slot: 2,
        stage: RebalanceStage::Parked,
        parked: 0,
        replayed: 0,
    });
    // Flood the chatty ring far past its capacity.
    for i in 0..5_000 {
        r.emit(ObsEvent::ConnAccepted { conn: i });
    }
    r.end(
        span,
        ObsEvent::SplitPhase {
            slot: 0,
            new_slot: 2,
            stage: RebalanceStage::Committed,
            parked: 3,
            replayed: 41,
        },
    );

    let events = r.recent_events();
    let split: Vec<_> = events
        .iter()
        .filter(|e| matches!(e.event, ObsEvent::SplitPhase { .. }))
        .collect();
    assert_eq!(split.len(), 2, "both split records must survive the flood");
    assert_eq!(split[0].span, span);
    assert_eq!(split[0].mark, SpanMark::Begin);
    assert_eq!(split[1].span, span);
    assert_eq!(split[1].mark, SpanMark::End);
    // Emission order is preserved across the merged rings.
    assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
}

#[test]
fn lifecycle_ring_is_bounded() {
    let r = Registry::new();
    for i in 0..(LIFECYCLE_RING_CAPACITY as u64 + 50) {
        r.emit(ObsEvent::CompactionWindow {
            pruned_pairs: i,
            cancelled_updates: 0,
            evicted_edges: 0,
            reclaimed_bytes: 0,
        });
    }
    let events = r.recent_events();
    assert_eq!(events.len(), LIFECYCLE_RING_CAPACITY);
    // The oldest records were evicted, the newest retained.
    assert!(matches!(
        events.last().unwrap().event,
        ObsEvent::CompactionWindow { pruned_pairs, .. }
            if pruned_pairs == LIFECYCLE_RING_CAPACITY as u64 + 49
    ));
}

fn populated_registry() -> Registry {
    let r = Registry::new();
    r.counter(names::WAL_APPENDS_TOTAL, &[("shard", "0")])
        .add(17);
    r.counter(names::WAL_APPENDS_TOTAL, &[("shard", "1")])
        .add(4);
    r.gauge(names::SHARD_QUEUE_DEPTH, &[("shard", "0")]).set(9);
    let h = r.histogram(names::SHARD_APPLY_LATENCY_US, &[("shard", "0")]);
    for v in [3u64, 3, 90, 4096, 70_000] {
        h.record(v);
    }
    r.emit(ObsEvent::Recovery {
        shard: 0,
        snapshot_seq: 128,
        replayed_updates: 40,
        recovered_seq: 168,
        repaired_torn_tail: true,
    });
    let span = r.begin(ObsEvent::MergePhase {
        slot: 1,
        freed_slot: 3,
        stage: RebalanceStage::Parked,
        parked: 0,
    });
    r.end(
        span,
        ObsEvent::MergePhase {
            slot: 1,
            freed_slot: 3,
            stage: RebalanceStage::Committed,
            parked: 12,
        },
    );
    assert!(span > 0);
    r
}

#[test]
fn snapshot_codec_round_trips() {
    let snap = populated_registry().snapshot();
    let mut buf = Vec::new();
    snap.encode_into(&mut buf);
    let mut reader = ByteReader::new(&buf);
    let decoded = RegistrySnapshot::decode(&mut reader).expect("decode");
    assert!(reader.is_empty(), "decode must consume the whole encoding");
    assert_eq!(decoded, snap);
}

#[test]
fn snapshot_codec_rejects_every_truncation() {
    let snap = populated_registry().snapshot();
    let mut buf = Vec::new();
    snap.encode_into(&mut buf);
    for len in 0..buf.len() {
        let mut reader = ByteReader::new(&buf[..len]);
        match RegistrySnapshot::decode(&mut reader) {
            Err(_) => {}
            // A prefix that happens to decode must not equal the original
            // (it lost data) — and for this encoding no prefix decodes at
            // all because every section is count-prefixed.
            Ok(d) => assert_ne!(d, snap, "truncated prefix decoded to the full snapshot"),
        }
    }
}

#[test]
fn snapshot_codec_rejects_hostile_counts_and_bad_buckets() {
    // A huge count with no bytes behind it must be rejected before
    // allocating.
    let mut buf = Vec::new();
    dyndens_graph::codec::put_u32(&mut buf, u32::MAX);
    assert!(RegistrySnapshot::decode(&mut ByteReader::new(&buf)).is_err());

    // Out-of-range or non-ascending bucket indexes are invalid.
    let snap = populated_registry().snapshot();
    let mut good = Vec::new();
    snap.encode_into(&mut good);
    // Corrupt one byte at a time; decoding must never panic, and must
    // either error or produce a different value.
    for i in 0..good.len() {
        let mut bad = good.clone();
        bad[i] ^= 0xFF;
        let _ = RegistrySnapshot::decode(&mut ByteReader::new(&bad));
    }
}

#[test]
fn prometheus_exposition_parses_line_by_line() {
    let snap = populated_registry().snapshot();
    let text = snap.to_prometheus();
    assert!(!text.is_empty());
    let mut saw_bucket = false;
    for line in text.lines() {
        if let Some(comment) = line.strip_prefix("# TYPE ") {
            let mut parts = comment.split_whitespace();
            let name = parts.next().expect("type line has a name");
            let kind = parts.next().expect("type line has a kind");
            assert!(matches!(kind, "counter" | "gauge" | "histogram"), "{line}");
            assert!(!name.is_empty());
            continue;
        }
        // Sample line: `name{labels} value` or `name value`.
        let (series, value) = line.rsplit_once(' ').expect("sample line has a value");
        assert!(
            value.parse::<f64>().is_ok(),
            "unparseable value in {line:?}"
        );
        if series.contains('{') {
            assert!(series.ends_with('}'), "unterminated label set in {line:?}");
        }
        saw_bucket |= series.contains("le=\"+Inf\"");
    }
    assert!(saw_bucket, "histogram must emit a +Inf bucket");
    // Cumulative bucket counts: the +Inf bucket equals _count.
    let inf: u64 = text
        .lines()
        .find(|l| l.contains("le=\"+Inf\""))
        .and_then(|l| l.rsplit_once(' '))
        .and_then(|(_, v)| v.parse().ok())
        .unwrap();
    assert_eq!(inf, 5);
}
