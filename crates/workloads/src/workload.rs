//! The common scenario interface: every workload in this crate produces a
//! deterministic, seeded stream — either timestamped entity-set posts or raw
//! [`EdgeUpdate`]s — behind the [`Workload`] trait, so the differential
//! oracle ([`crate::oracle`]) and the `scenario_matrix` bench can drive any
//! scenario through the full stack without knowing its shape.

use dyndens_graph::{EdgeUpdate, FxHashMap, VertexId};
use dyndens_stream::Post;

/// What a workload emits: raw edge weight updates, or timestamped
/// entity-set posts (documents, signals) whose co-occurrence the workload
/// also knows how to lower into updates deterministically.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadStream {
    /// A raw edge weight update stream, ready for the engine.
    Updates(Vec<EdgeUpdate>),
    /// Timestamped entity-set posts (the pre-association-measure shape).
    Posts(Vec<Post>),
}

/// A deterministic, seeded scenario generator.
///
/// Every implementor guarantees three properties the differential oracle
/// depends on:
///
/// 1. **Determinism** — the same configuration produces the identical
///    stream, update for update, run after run;
/// 2. **Partition alignment** — every edge's endpoints share a congruence
///    class modulo [`alignment`](Workload::alignment), so under
///    [`ShardFn::Modulo`](dyndens_graph::ShardFn) with any shard count
///    dividing the alignment each community is owned by exactly one shard
///    (and stays owned through route-trie splits up to the class-preserving
///    depth);
/// 3. **Bounded weights** — per-pair weights never leave `[0, 1.45]`, which
///    under the canonical engine setup (`AvgWeight`, `T = 1`, `Nmax = 4`,
///    `delta_it = 0.15`) keeps every subgraph below the too-dense regime.
///
/// Together these make the sharded answer *bit-identical* to the
/// single-engine answer, which is what lets the oracle assert equality down
/// to the `f64` score bits instead of within a tolerance.
pub trait Workload {
    /// Short machine-readable scenario name (used as the bench JSON row key).
    fn name(&self) -> &'static str;

    /// The congruence-class alignment of entity ids (property 2 above).
    fn alignment(&self) -> usize;

    /// The canonical raw update stream (lowered from posts if the workload
    /// is post-shaped). Deterministic per configuration.
    fn updates(&self) -> Vec<EdgeUpdate>;

    /// The stream in its native shape. Defaults to wrapping
    /// [`updates`](Workload::updates); post-shaped workloads override it.
    fn stream(&self) -> WorkloadStream {
        WorkloadStream::Updates(self.updates())
    }
}

/// The per-pair weight cap every generator in this crate honours: 1.45 keeps
/// pairs (need ≥ 2.85) and triangles (need ≥ 6) below the too-dense regime
/// of the canonical `AvgWeight`/`T = 1`/`Nmax = 4` setup.
pub const MAX_PAIR_WEIGHT: f64 = 1.45;

/// Deltas smaller than this are never emitted (they carry no signal and
/// `EdgeUpdate` rejects zero).
const MIN_DELTA: f64 = 1e-9;

/// Shared bookkeeping that turns generator intent ("reinforce this pair",
/// "weaken this pair") into capped, non-negative edge weight updates — the
/// invariant-preserving core every scenario generator builds on.
#[derive(Debug, Default, Clone)]
pub(crate) struct WeightBook {
    weights: FxHashMap<(VertexId, VertexId), f64>,
}

impl WeightBook {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// The current weight of a pair.
    pub(crate) fn weight(&self, a: VertexId, b: VertexId) -> f64 {
        self.weights
            .get(&(a.min(b), a.max(b)))
            .copied()
            .unwrap_or(0.0)
    }

    /// Strengthens the pair by `magnitude`, clamped to the headroom below
    /// [`MAX_PAIR_WEIGHT`]. Returns `None` when the pair is already pinned
    /// at the cap (no meaningful positive delta exists).
    pub(crate) fn reinforce(
        &mut self,
        a: VertexId,
        b: VertexId,
        magnitude: f64,
    ) -> Option<EdgeUpdate> {
        debug_assert_ne!(a, b, "self loops never enter a workload stream");
        let key = (a.min(b), a.max(b));
        let current = self.weights.get(&key).copied().unwrap_or(0.0);
        let delta = magnitude.min(MAX_PAIR_WEIGHT - current);
        if delta < MIN_DELTA {
            return None;
        }
        self.weights.insert(key, current + delta);
        Some(EdgeUpdate::new(key.0, key.1, delta))
    }

    /// Weakens the pair by `magnitude`, clamped so the weight never goes
    /// negative; weights that reach (numerical) zero are dropped. Returns
    /// `None` when the pair carries no weight to take away.
    pub(crate) fn weaken(
        &mut self,
        a: VertexId,
        b: VertexId,
        magnitude: f64,
    ) -> Option<EdgeUpdate> {
        let key = (a.min(b), a.max(b));
        let current = self.weights.get(&key).copied().unwrap_or(0.0);
        let delta = magnitude.min(current);
        if delta < MIN_DELTA {
            return None;
        }
        let remaining = current - delta;
        if remaining <= 1e-12 {
            self.weights.remove(&key);
        } else {
            self.weights.insert(key, remaining);
        }
        Some(EdgeUpdate::new(key.0, key.1, -delta))
    }

    /// Sustained-traffic primitive for burst scenarios: reinforce if the
    /// pair has headroom, otherwise *weaken* it (churn) — so a pair under
    /// 100x traffic keeps producing real updates instead of saturating into
    /// clamped-to-zero no-ops, while the weight stays inside `[0, cap]`.
    pub(crate) fn churn(&mut self, a: VertexId, b: VertexId, magnitude: f64) -> Option<EdgeUpdate> {
        let key = (a.min(b), a.max(b));
        let current = self.weights.get(&key).copied().unwrap_or(0.0);
        if MAX_PAIR_WEIGHT - current >= magnitude {
            self.reinforce(a, b, magnitude)
        } else {
            self.weaken(a, b, magnitude)
        }
    }
}

/// The shared entity-id layout: block `block` of residue class
/// `class` (mod `alignment`), member `i` — i.e.
/// `(block * span + i) * alignment + class`. Distinct blocks give disjoint
/// vertex sets within a class; every id stays in its class, which is what
/// keeps communities shard-aligned under `ShardFn::Modulo`.
pub(crate) fn class_vertex(
    block: usize,
    span: usize,
    i: usize,
    alignment: usize,
    class: usize,
) -> VertexId {
    debug_assert!(i < span, "member index must stay inside the block span");
    VertexId(((block * span + i) * alignment + class % alignment) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_book_caps_and_floors() {
        let mut book = WeightBook::new();
        let (a, b) = (VertexId(0), VertexId(8));
        // Reinforce far past the cap: total weight must clamp at the cap.
        for _ in 0..100 {
            book.reinforce(a, b, 0.1);
        }
        assert!((book.weight(a, b) - MAX_PAIR_WEIGHT).abs() < 1e-9);
        assert!(book.reinforce(a, b, 0.1).is_none(), "pinned at the cap");
        // Churn keeps emitting real updates at the cap.
        let u = book
            .churn(a, b, 0.1)
            .expect("churn never stalls at the cap");
        assert!(u.is_negative());
        // Weaken far past zero: weight floors at zero and disappears.
        for _ in 0..100 {
            book.weaken(a, b, 0.2);
        }
        assert_eq!(book.weight(a, b), 0.0);
        assert!(book.weaken(a, b, 0.1).is_none(), "nothing left to take");
    }

    #[test]
    fn class_vertices_stay_in_class_and_blocks_are_disjoint() {
        let mut seen = std::collections::HashSet::new();
        for block in 0..10 {
            for i in 0..16 {
                let v = class_vertex(block, 16, i, 8, 3);
                assert_eq!(v.0 % 8, 3);
                assert!(seen.insert(v.0), "blocks must not overlap");
            }
        }
    }
}
