//! The geo-partitioned scenario: city-keyed signal streams whose stories
//! must **evolve rather than duplicate** across waves — the rootsignal
//! clustering playbook (evolve-don't-duplicate, zombie archival) expressed
//! as an edge-update stream.
//!
//! Each of the eight cities is a residue class (mod 8), so under
//! `ShardFn::Modulo` every city's signal lands wholly on one shard — the
//! geo analogue of partition alignment. Per city, one *evolving story* runs
//! through the stream in waves: each wave keeps the story's core members,
//! drifts exactly one member out and one pool member in, and then
//! * reinforces the **current** member pairs (the story evolves in place —
//!   the same dense subgraph shifts membership rather than a near-duplicate
//!   appearing beside it), and
//! * decays the departed member's edges to zero with explicit negative
//!   updates (**zombie archival** — a member that left must not linger as a
//!   ghost in the dense set).
//!
//! A background community per city keeps the stream from being pure story
//! signal. The invariant suite checks both halves: membership genuinely
//! turns over across waves, and departed members' edges genuinely reach
//! zero.

use dyndens_graph::{EdgeUpdate, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::workload::{class_vertex, WeightBook, Workload};

const ALIGNMENT: usize = 8;
/// One city per residue class.
const N_CITIES: usize = 8;
/// Entity pool each city's story drifts through.
const CITY_POOL: usize = 12;
/// Live story members at any moment.
const STORY_SIZE: usize = 5;
const BLOCK_SPAN: usize = 16;
/// Membership waves over the stream.
const N_WAVES: usize = 8;

/// Per-city evolution state while generating.
struct CityStory {
    pool: Vec<VertexId>,
    members: Vec<VertexId>,
    /// Pool index the next drift brings in.
    next_in: usize,
    /// Index (into `members`) the next drift sends out.
    next_out: usize,
    /// Departed-member pairs still carrying weight, to be decayed to zero.
    retiring: Vec<(VertexId, VertexId)>,
    wave: usize,
}

/// The geo-partitioned workload. See the [module docs](self).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeoPartitioned {
    /// Stream length in updates.
    pub n_updates: usize,
    /// RNG seed.
    pub seed: u64,
}

impl GeoPartitioned {
    /// A geo-partitioned stream of `n_updates` updates.
    pub fn new(n_updates: usize, seed: u64) -> Self {
        GeoPartitioned { n_updates, seed }
    }
}

impl Workload for GeoPartitioned {
    fn name(&self) -> &'static str {
        "geo_partitioned"
    }

    fn alignment(&self) -> usize {
        ALIGNMENT
    }

    fn updates(&self) -> Vec<EdgeUpdate> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut cities: Vec<CityStory> = (0..N_CITIES)
            .map(|c| {
                let pool: Vec<VertexId> = (0..CITY_POOL)
                    .map(|i| class_vertex(c, BLOCK_SPAN, i, ALIGNMENT, c))
                    .collect();
                let members = pool[..STORY_SIZE].to_vec();
                CityStory {
                    pool,
                    members,
                    next_in: STORY_SIZE,
                    next_out: 0,
                    retiring: Vec::new(),
                    wave: 0,
                }
            })
            .collect();
        let backgrounds: Vec<Vec<VertexId>> = (0..N_CITIES)
            .map(|c| {
                (0..5)
                    .map(|i| class_vertex(N_CITIES + c, BLOCK_SPAN, i, ALIGNMENT, c))
                    .collect()
            })
            .collect();

        let mut book = WeightBook::new();
        let mut updates = Vec::with_capacity(self.n_updates);
        let mut slot = 0usize;
        while updates.len() < self.n_updates {
            // Deterministic round-robin over cities keeps every class live.
            let c = slot % N_CITIES;
            slot += 1;
            let wave = (updates.len() * N_WAVES / self.n_updates).min(N_WAVES - 1);
            let city = &mut cities[c];

            // Wave boundary: drift one member out, one in. The departed
            // member's live edges join the retiring queue for decay.
            if wave > city.wave {
                city.wave = wave;
                let out = city.members[city.next_out];
                let incoming = city.pool[city.next_in];
                city.members[city.next_out] = incoming;
                city.next_out = (city.next_out + 1) % STORY_SIZE;
                city.next_in = (city.next_in + 1) % CITY_POOL;
                for &m in &city.members {
                    if book.weight(out, m) > 0.0 {
                        city.retiring.push((out, m));
                    }
                }
            }

            let update = if !city.retiring.is_empty() && rng.gen_bool(0.5) {
                // Zombie archival: decay a departed member's edge.
                let (a, b) = city.retiring[0];
                match book.weaken(a, b, rng.gen_range(0.05..0.15)) {
                    Some(u) => {
                        if book.weight(a, b) == 0.0 {
                            city.retiring.remove(0);
                        }
                        Some(u)
                    }
                    None => {
                        city.retiring.remove(0);
                        None
                    }
                }
            } else if rng.gen_bool(0.75) {
                // Evolve in place: reinforce the current membership.
                let a = city.members[rng.gen_range(0..STORY_SIZE)];
                let b = city.members[rng.gen_range(0..STORY_SIZE)];
                if a == b {
                    continue;
                }
                book.reinforce(a, b, rng.gen_range(0.04..0.12))
            } else {
                // Background chatter.
                let group = &backgrounds[c];
                let a = group[rng.gen_range(0..group.len())];
                let b = group[rng.gen_range(0..group.len())];
                if a == b {
                    continue;
                }
                let magnitude = rng.gen_range(0.02..0.10);
                if rng.gen_bool(0.15) {
                    book.weaken(a, b, magnitude)
                } else {
                    book.reinforce(a, b, magnitude)
                }
            };
            if let Some(u) = update {
                updates.push(u);
            }
        }
        updates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::MAX_PAIR_WEIGHT;
    use dyndens_graph::FxHashMap;

    #[test]
    fn deterministic_aligned_and_capped() {
        let w = GeoPartitioned::new(12_000, 31);
        let updates = w.updates();
        assert_eq!(updates.len(), 12_000);
        assert_eq!(updates, w.updates());
        let mut weights: FxHashMap<(VertexId, VertexId), f64> = FxHashMap::default();
        for u in &updates {
            assert_eq!(u.a.0 % 8, u.b.0 % 8, "cross-city edge {u:?}");
            let entry = weights.entry((u.a, u.b)).or_insert(0.0);
            *entry += u.delta;
            assert!(*entry >= -1e-9 && *entry <= MAX_PAIR_WEIGHT + 1e-9);
        }
    }

    #[test]
    fn stories_evolve_and_zombies_decay() {
        let w = GeoPartitioned::new(16_000, 31);
        let updates = w.updates();
        let mut weights: FxHashMap<(VertexId, VertexId), f64> = FxHashMap::default();
        for u in &updates {
            let entry = weights.entry((u.a, u.b)).or_insert(0.0);
            *entry += u.delta;
            if entry.abs() < 1e-9 {
                weights.remove(&(u.a, u.b));
            }
        }
        for city in 0..N_CITIES as u32 {
            // Evolution: membership turned over — story-pool vertices beyond
            // the initial five carry weight by the end.
            // A vertex is `(block * 16 + i) * 8 + city`; block == city is the
            // city's story pool, and `i = (v/8) % 16` its pool index.
            let story_vertices: std::collections::HashSet<u32> = weights
                .iter()
                .filter(|(&(a, _), &wt)| {
                    wt > 0.05 && a.0 % 8 == city && (a.0 / 8) / BLOCK_SPAN as u32 == city
                })
                .flat_map(|(&(a, b), _)| {
                    [(a.0 / 8) % BLOCK_SPAN as u32, (b.0 / 8) % BLOCK_SPAN as u32]
                })
                .collect();
            assert!(
                story_vertices.iter().any(|&i| i >= STORY_SIZE as u32),
                "city {city}: story never evolved past its initial members"
            );
            // Zombie archival: the first drifted-out member (pool index 0,
            // departed at wave 1 of {N_WAVES}) carries no residual weight.
            let zombie = class_vertex(city as usize, BLOCK_SPAN, 0, ALIGNMENT, city as usize);
            let residual: f64 = weights
                .iter()
                .filter(|(&(a, b), _)| a == zombie || b == zombie)
                .map(|(_, &wt)| wt)
                .sum();
            assert!(
                residual < 0.05,
                "city {city}: departed member still carries weight {residual}"
            );
        }
        assert!(updates.iter().any(|u| u.is_negative()));
    }
}
