//! The document-corpus scenario: entity co-occurrence over a stream of
//! documents with **self-reinforcing repeated-edge weights** — the
//! knowledge-graph-growth shape (à la plexus) rather than the social-burst
//! shape.
//!
//! Two preferential-attachment loops drive the reinforcement:
//!
//! * popular *topics* attract more documents (a topic's probability of
//!   producing the next document grows with the documents it already
//!   produced);
//! * popular *entities within a topic* get cited more (an entity's
//!   probability of appearing grows with its appearance count).
//!
//! So the same entity pairs co-occur again and again, and each repetition
//! strengthens the pair *more* than the last: the lowering from posts to
//! updates scales the increment with the pair's co-occurrence count. Unlike
//! the χ²/LLR association pipeline in `dyndens-stream` (whose unbounded
//! scores would push hot pairs into the too-dense regime), this
//! workload-owned measure is capped, so the differential oracle's
//! bit-exactness precondition holds by construction.
//!
//! This is the crate's post-shaped workload: [`Workload::stream`] returns
//! the timestamped documents themselves; [`Workload::updates`] returns the
//! deterministic lowering.

use dyndens_graph::{EdgeUpdate, FxHashMap, VertexId};
use dyndens_stream::Post;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::workload::{class_vertex, WeightBook, Workload, WorkloadStream};

const ALIGNMENT: usize = 8;
/// Topics, two per residue class: a document's entities all come from one
/// topic, and a topic's entity pool shares a residue class, which keeps the
/// co-occurrence graph partition-aligned.
const N_TOPICS: usize = 16;
/// Entities per topic pool.
const TOPIC_POOL: usize = 6;
const BLOCK_SPAN: usize = 8;
/// Base per-co-occurrence weight increment.
const BASE_INCREMENT: f64 = 0.02;
/// How much each repetition of a pair amplifies its next increment.
const REINFORCEMENT: f64 = 0.004;
/// Repetition count beyond which the amplification saturates.
const REINFORCEMENT_SATURATION: u64 = 20;
/// Seconds between consecutive documents.
const DOC_INTERVAL_SECS: f64 = 1.0;

/// The document-corpus workload. See the [module docs](self).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocCorpus {
    /// Number of documents in the corpus.
    pub n_docs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl DocCorpus {
    /// A corpus of `n_docs` documents.
    pub fn new(n_docs: usize, seed: u64) -> Self {
        DocCorpus { n_docs, seed }
    }

    /// The timestamped documents: each picks a topic preferentially by
    /// popularity, then 3–5 entities from the topic's pool preferentially by
    /// citation count.
    pub fn documents(&self) -> Vec<Post> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let pools: Vec<Vec<VertexId>> = (0..N_TOPICS)
            .map(|t| {
                (0..TOPIC_POOL)
                    .map(|i| class_vertex(t, BLOCK_SPAN, i, ALIGNMENT, t % ALIGNMENT))
                    .collect()
            })
            .collect();
        let mut topic_docs = vec![1u64; N_TOPICS];
        let mut entity_uses: Vec<Vec<u64>> = vec![vec![1u64; TOPIC_POOL]; N_TOPICS];

        let mut docs = Vec::with_capacity(self.n_docs);
        for d in 0..self.n_docs {
            let topic = weighted_pick(&mut rng, &topic_docs);
            let n_entities = rng.gen_range(3usize..=5).min(TOPIC_POOL);
            let mut chosen: Vec<usize> = Vec::with_capacity(n_entities);
            while chosen.len() < n_entities {
                let weights: Vec<u64> = entity_uses[topic]
                    .iter()
                    .enumerate()
                    .map(|(i, &w)| if chosen.contains(&i) { 0 } else { w })
                    .collect();
                chosen.push(weighted_pick(&mut rng, &weights));
            }
            topic_docs[topic] += 1;
            for &e in &chosen {
                entity_uses[topic][e] += 1;
            }
            let entities = chosen.into_iter().map(|e| pools[topic][e]).collect();
            docs.push(Post::new(d as f64 * DOC_INTERVAL_SECS, entities));
        }
        docs
    }
}

/// Index into `weights` drawn proportionally to the weights (all-zero weight
/// vectors never occur: counts start at 1 and masked picks leave at least
/// one unchosen entity while `chosen.len() < TOPIC_POOL`).
fn weighted_pick(rng: &mut StdRng, weights: &[u64]) -> usize {
    let total: u64 = weights.iter().sum();
    let mut roll = rng.gen_range(0..total);
    for (i, &w) in weights.iter().enumerate() {
        if roll < w {
            return i;
        }
        roll -= w;
    }
    unreachable!("roll was drawn below the total weight")
}

impl Workload for DocCorpus {
    fn name(&self) -> &'static str {
        "doc_corpus"
    }

    fn alignment(&self) -> usize {
        ALIGNMENT
    }

    fn stream(&self) -> WorkloadStream {
        WorkloadStream::Posts(self.documents())
    }

    fn updates(&self) -> Vec<EdgeUpdate> {
        let mut book = WeightBook::new();
        let mut seen: FxHashMap<(VertexId, VertexId), u64> = FxHashMap::default();
        let mut updates = Vec::new();
        for doc in self.documents() {
            for (a, b) in doc.entity_pairs() {
                let times = seen.entry((a.min(b), a.max(b))).or_insert(0);
                let increment =
                    BASE_INCREMENT + REINFORCEMENT * (*times).min(REINFORCEMENT_SATURATION) as f64;
                *times += 1;
                // Churn at the cap: a saturated hot pair keeps producing
                // real (negative-then-positive) updates instead of clamped
                // no-ops, mirroring post-normalisation measure behaviour.
                if let Some(u) = book.churn(a, b, increment) {
                    updates.push(u);
                }
            }
        }
        updates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::MAX_PAIR_WEIGHT;

    #[test]
    fn documents_are_deterministic_timestamped_and_single_topic() {
        let w = DocCorpus::new(2_000, 9);
        let docs = w.documents();
        assert_eq!(docs.len(), 2_000);
        assert_eq!(docs, w.documents());
        let mut last_ts = f64::NEG_INFINITY;
        for d in &docs {
            assert!(d.timestamp > last_ts, "timestamps must advance");
            last_ts = d.timestamp;
            assert!((3..=5).contains(&d.entity_count()));
            // One topic per document ⇒ one residue class per document.
            let class = d.entities[0].0 % 8;
            assert!(d.entities.iter().all(|e| e.0 % 8 == class));
        }
    }

    #[test]
    fn lowering_is_capped_and_self_reinforcing() {
        let w = DocCorpus::new(2_000, 9);
        let updates = w.updates();
        assert!(!updates.is_empty());
        assert_eq!(updates, w.updates());
        let mut weights: FxHashMap<(VertexId, VertexId), f64> = FxHashMap::default();
        let mut counts: FxHashMap<(VertexId, VertexId), u64> = FxHashMap::default();
        for u in &updates {
            assert_eq!(u.a.0 % 8, u.b.0 % 8, "cross-class edge {u:?}");
            let entry = weights.entry((u.a, u.b)).or_insert(0.0);
            *entry += u.delta;
            assert!(*entry >= -1e-9 && *entry <= MAX_PAIR_WEIGHT + 1e-9);
            *counts.entry((u.a, u.b)).or_insert(0) += 1;
        }
        // Preferential attachment concentrates repetitions: the hottest pair
        // must dwarf the median pair.
        let mut by_count: Vec<u64> = counts.values().copied().collect();
        by_count.sort_unstable();
        let median = by_count[by_count.len() / 2];
        let max = *by_count.last().unwrap();
        assert!(
            max >= 4 * median.max(1),
            "no self-reinforcement: max {max} vs median {median}"
        );
    }
}
