//! # dyndens-workloads
//!
//! Workload generators for the DynDens benchmarks and tests:
//!
//! * [`synthetic`] — synthetic edge-weight-update streams matching the
//!   generation strategies of the paper's threshold-adjustment experiments
//!   (Section 6.2: `random`, `edgePreferential`, `nodePreferential`,
//!   `nodePreferentialBoolean`) and the near-clique mixture used for the
//!   heuristics ablation (Section 7.3);
//! * [`tweets`] — a planted-story social media simulator standing in for the
//!   Twitter and blog corpora the paper's datasets were derived from (which
//!   are not redistributable); it produces entity-annotated posts with the
//!   same statistical shape (entity-count mix per post, Zipf-distributed
//!   background popularity, bursty facet-structured story mentions) so the
//!   full pipeline — association measures, decay, DynDens — is exercised on
//!   realistic input.
//!
//! All generators are deterministic given a seed.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod synthetic;
pub mod tweets;

pub use synthetic::{SyntheticConfig, SyntheticStrategy, SyntheticWorkload};
pub use tweets::{SimulatedCorpus, StoryScript, TweetSimulator, TweetSimulatorConfig};
