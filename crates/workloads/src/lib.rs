//! # dyndens-workloads
//!
//! The scenario & adversary workload library for the DynDens benchmarks and
//! tests: deterministic, seeded stream generators behind the common
//! [`Workload`] trait, plus the differential [`oracle`] that drives any
//! workload through the full stack (sharded fleet vs. single engine,
//! kill-and-recover, split/merge mid-stream, push-fed serve mirror) and
//! asserts bit-exact story sets at every checkpoint.
//!
//! Paper-era generators:
//!
//! * [`synthetic`] — synthetic edge-weight-update streams matching the
//!   generation strategies of the paper's threshold-adjustment experiments
//!   (Section 6.2: `random`, `edgePreferential`, `nodePreferential`,
//!   `nodePreferentialBoolean`) and the near-clique mixture used for the
//!   heuristics ablation (Section 7.3);
//! * [`tweets`] — a planted-story social media simulator standing in for the
//!   Twitter and blog corpora the paper's datasets were derived from (which
//!   are not redistributable); it produces entity-annotated posts with the
//!   same statistical shape (entity-count mix per post, Zipf-distributed
//!   background popularity, bursty facet-structured story mentions) so the
//!   full pipeline — association measures, decay, DynDens — is exercised on
//!   realistic input.
//!
//! The scenario matrix (each a [`Workload`], each judged by the oracle and a
//! `BENCH_scenarios.json` row — see `docs/WORKLOADS.md`):
//!
//! * [`AlignedCommunities`] — the friendly baseline: balanced planted
//!   communities, one congruence class each (the canonical 50k equivalence
//!   stream, moved here from `dyndens-bench`);
//! * [`FlashCrowd`] — one story absorbs ~100x traffic in seconds, designed
//!   to trip the `Rebalancer`'s skew trigger — and *only* during the burst;
//! * [`AdversarialSkew`] — every update funneled into one congruence class,
//!   so a single shard owns the world: the split-storm hysteresis probe;
//! * [`DocCorpus`] — document co-occurrence with self-reinforcing
//!   repeated-edge weights (preferential topics, preferential entities);
//! * [`GeoPartitioned`] — city-keyed signal streams whose stories evolve
//!   rather than duplicate across waves, with departed members' edges
//!   decayed to zero (zombie archival).
//!
//! All generators are deterministic given a seed.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adversarial;
pub mod aligned;
pub mod doc_corpus;
pub mod flash_crowd;
pub mod geo;
pub mod oracle;
pub mod synthetic;
pub mod tweets;
mod workload;

pub use adversarial::AdversarialSkew;
pub use aligned::{shard_aligned_stream, AlignedCommunities};
pub use doc_corpus::DocCorpus;
pub use flash_crowd::FlashCrowd;
pub use geo::GeoPartitioned;
pub use oracle::{
    Backend, BackendReport, CompareMode, Leg, LegReport, Oracle, OracleReport, ALL_BACKENDS,
};
pub use synthetic::{SyntheticConfig, SyntheticStrategy, SyntheticWorkload};
pub use tweets::{SimulatedCorpus, StoryScript, TweetSimulator, TweetSimulatorConfig};
pub use workload::{Workload, WorkloadStream, MAX_PAIR_WEIGHT};
