//! The adversarial-skew scenario: **every** update is funneled into one
//! congruence class, so under `ShardFn::Modulo` a single shard owns the
//! world — permanently, not as a transient burst.
//!
//! This is the worst case for the skew trigger: the hot shard's window share
//! sits at ~100% forever, so a naive rebalancer would split on every check,
//! and — because each split's bit-1 child owns *nothing* (the class routes
//! entirely through bit 0 at every depth) — the fleet would grow useless
//! empty workers without ever shedding load: a split storm. The policy's
//! hysteresis is what bounds it: a split resets the observation window (the
//! next check only re-establishes the baseline), the share signal needs
//! [`min_total_updates`](dyndens_shard::RebalancePolicy::min_total_updates)
//! of fresh traffic per window, and the 60%-split vs 5%-merge gap keeps the
//! hot child unmergeable so topology never flip-flops. The regression suite
//! pins exactly that: splits fire at most once per established window, and
//! no merge ever fires while the skew persists.
//!
//! The stream is otherwise healthy — disjoint communities with capped
//! weights — so the differential oracle's bit-exactness legs all hold: the
//! adversary attacks the *load balance*, not the answer.

use dyndens_graph::{EdgeUpdate, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::workload::{class_vertex, WeightBook, Workload};

const ALIGNMENT: usize = 8;
/// Disjoint communities, all inside the one targeted class.
const N_COMMUNITIES: usize = 12;
const BLOCK_SPAN: usize = 8;

/// The adversarial-skew workload. See the [module docs](self).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdversarialSkew {
    /// Stream length in updates.
    pub n_updates: usize,
    /// RNG seed.
    pub seed: u64,
    /// The residue class (mod 8) every update is funneled into.
    pub class: usize,
}

impl AdversarialSkew {
    /// An adversarial stream of `n_updates` updates, all in class 0 (the
    /// class whose routing bits are all zero, so every split's new child
    /// receives nothing — the maximally useless split).
    pub fn new(n_updates: usize, seed: u64) -> Self {
        AdversarialSkew {
            n_updates,
            seed,
            class: 0,
        }
    }

    fn communities(&self) -> Vec<Vec<VertexId>> {
        (0..N_COMMUNITIES)
            .map(|g| {
                let size = 4 + g % 2;
                (0..size)
                    .map(|i| class_vertex(g, BLOCK_SPAN, i, ALIGNMENT, self.class))
                    .collect()
            })
            .collect()
    }
}

impl Workload for AdversarialSkew {
    fn name(&self) -> &'static str {
        "adversarial_skew"
    }

    fn alignment(&self) -> usize {
        ALIGNMENT
    }

    fn updates(&self) -> Vec<EdgeUpdate> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let communities = self.communities();
        let mut book = WeightBook::new();
        let mut updates = Vec::with_capacity(self.n_updates);
        while updates.len() < self.n_updates {
            let group = &communities[rng.gen_range(0..communities.len())];
            let a = group[rng.gen_range(0..group.len())];
            let b = group[rng.gen_range(0..group.len())];
            if a == b {
                continue;
            }
            let magnitude = rng.gen_range(0.02..0.12);
            let update = if rng.gen_bool(0.15) {
                book.weaken(a, b, magnitude)
            } else {
                book.reinforce(a, b, magnitude)
            };
            if let Some(u) = update {
                updates.push(u);
            }
        }
        updates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::MAX_PAIR_WEIGHT;
    use dyndens_graph::FxHashMap;

    #[test]
    fn every_update_lands_in_the_target_class() {
        let w = AdversarialSkew::new(6_000, 23);
        let updates = w.updates();
        assert_eq!(updates.len(), 6_000);
        assert_eq!(updates, w.updates());
        let mut weights: FxHashMap<(VertexId, VertexId), f64> = FxHashMap::default();
        for u in &updates {
            assert_eq!(u.a.0 as usize % ALIGNMENT, w.class);
            assert_eq!(u.b.0 as usize % ALIGNMENT, w.class);
            let entry = weights.entry((u.a, u.b)).or_insert(0.0);
            *entry += u.delta;
            assert!(*entry >= -1e-9 && *entry <= MAX_PAIR_WEIGHT + 1e-9);
        }
        assert!(updates.iter().any(|u| u.is_negative()));
    }
}
