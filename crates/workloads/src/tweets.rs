//! A planted-story social media simulator.
//!
//! The paper's real datasets (a one-day Twitter sample and a blog corpus, run
//! through proprietary spam filtering and entity extraction) are not
//! redistributable, so the benchmark harness uses this simulator instead. It
//! generates a stream of entity-annotated posts whose statistical shape drives
//! the same code paths:
//!
//! * the per-post entity-count mix follows the proportions the paper reports
//!   for its tweet sample (roughly 76.5% of posts mention no entity of
//!   interest, 18.3% one, 4.3% two and about 1% three or more);
//! * background entity popularity is Zipf-distributed, producing the heavy
//!   skew of real mention counts;
//! * a configurable set of *stories* is planted: each story is a small group
//!   of entities with a set of facets (entity pairs/triples) that are
//!   mentioned together in bursts during the story's active window, exactly
//!   the structure DynDens is designed to surface.
//!
//! The simulator produces [`Post`]s; feeding them through
//! [`EdgeUpdateGenerator`] yields the
//! weighted or unweighted edge update streams used across the benchmark
//! harness.

use dyndens_graph::VertexId;
use dyndens_stream::{AssociationMeasure, EdgeUpdateGenerator, EntityRegistry, Post};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A planted story: a named group of entities, its facets and its activity
/// window.
#[derive(Debug, Clone, PartialEq)]
pub struct StoryScript {
    /// A label for reports (e.g. "bin Laden raid").
    pub name: String,
    /// The entities involved in the story.
    pub entities: Vec<String>,
    /// Start of the activity window (seconds).
    pub start: f64,
    /// End of the activity window (seconds).
    pub end: f64,
    /// Relative intensity: expected fraction of story posts (among all posts
    /// within the window) devoted to this story.
    pub intensity: f64,
}

impl StoryScript {
    /// Creates a story active over the whole simulation.
    pub fn new(name: &str, entities: &[&str], intensity: f64) -> Self {
        StoryScript {
            name: name.to_string(),
            entities: entities.iter().map(|s| s.to_string()).collect(),
            start: 0.0,
            end: f64::INFINITY,
            intensity,
        }
    }

    /// Restricts the story to an activity window.
    pub fn with_window(mut self, start: f64, end: f64) -> Self {
        self.start = start;
        self.end = end;
        self
    }
}

/// Configuration of the tweet simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct TweetSimulatorConfig {
    /// Number of posts to generate.
    pub n_posts: usize,
    /// Number of background entities (Zipf-distributed popularity).
    pub n_background_entities: usize,
    /// Simulated duration in seconds (posts are spread uniformly over it).
    pub duration: f64,
    /// Per-post probability mix of the number of mentioned entities:
    /// `(zero, one, two, three_or_more)`. Defaults to the proportions reported
    /// for the paper's tweet sample.
    pub entity_count_mix: (f64, f64, f64, f64),
    /// Zipf exponent for background entity popularity.
    pub zipf_exponent: f64,
    /// The planted stories.
    pub stories: Vec<StoryScript>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TweetSimulatorConfig {
    fn default() -> Self {
        TweetSimulatorConfig {
            n_posts: 20_000,
            n_background_entities: 500,
            duration: 24.0 * 3600.0,
            entity_count_mix: (0.765, 0.183, 0.043, 0.009),
            zipf_exponent: 1.1,
            stories: default_stories(),
            seed: 2011,
        }
    }
}

impl TweetSimulatorConfig {
    /// A blog-like profile: far fewer posts, but each mentions more entities
    /// (longer documents), matching the second half of the paper's Table 3.
    pub fn blog_profile() -> Self {
        TweetSimulatorConfig {
            n_posts: 4_000,
            entity_count_mix: (0.40, 0.25, 0.20, 0.15),
            ..Self::default()
        }
    }
}

/// The default planted stories, loosely following the events the paper's
/// qualitative table revolves around (1 May 2011).
pub fn default_stories() -> Vec<StoryScript> {
    let day = 24.0 * 3600.0;
    vec![
        StoryScript::new(
            "raid announcement",
            &[
                "Barack Obama",
                "Osama bin Laden",
                "White House",
                "Abbottabad",
            ],
            0.30,
        )
        .with_window(0.80 * day, day),
        StoryScript::new(
            "raid commentary",
            &["Osama bin Laden", "Abbottabad", "C.I.A.", "Pakistan"],
            0.20,
        )
        .with_window(0.82 * day, day),
        StoryScript::new(
            "libya crisis",
            &["NATO", "Libya", "Muammar al-Gaddafi"],
            0.15,
        ),
        StoryScript::new(
            "royal wedding",
            &["Royal Wedding", "Prince William", "Kate Middleton"],
            0.12,
        )
        .with_window(0.0, 0.5 * day),
        StoryScript::new("psn hack", &["Sony", "PlayStation", "Kazuo Hirai"], 0.12),
        StoryScript::new("pop culture", &["Lady Gaga", "Justin Bieber"], 0.11),
    ]
}

/// A generated corpus: the entity registry plus the post stream.
#[derive(Debug, Clone)]
pub struct SimulatedCorpus {
    /// Name ↔ vertex mapping for every entity used by the corpus.
    pub registry: EntityRegistry,
    /// The generated posts, ordered by timestamp.
    pub posts: Vec<Post>,
    /// The vertices of each planted story, in the order of the configured
    /// scripts.
    pub story_vertices: Vec<Vec<VertexId>>,
}

impl SimulatedCorpus {
    /// Converts the corpus into a stream of edge weight updates under the
    /// given association measure and decay mean life (`None` disables decay).
    pub fn to_updates<M: AssociationMeasure>(
        &self,
        measure: M,
        mean_life: Option<f64>,
    ) -> Vec<dyndens_graph::EdgeUpdate> {
        let mut generator = match mean_life {
            Some(life) => EdgeUpdateGenerator::new(measure, life),
            None => EdgeUpdateGenerator::without_decay(measure),
        };
        generator.process_posts(self.posts.iter())
    }
}

/// The planted-story post simulator.
#[derive(Debug, Clone)]
pub struct TweetSimulator {
    config: TweetSimulatorConfig,
}

impl TweetSimulator {
    /// Creates a simulator from a configuration.
    pub fn new(config: TweetSimulatorConfig) -> Self {
        assert!(config.n_posts > 0 && config.n_background_entities >= 10);
        TweetSimulator { config }
    }

    /// Generates the corpus.
    pub fn generate(&self) -> SimulatedCorpus {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut registry = EntityRegistry::new();

        // Register story entities first so their ids are stable, then the
        // background entities.
        let story_vertices: Vec<Vec<VertexId>> = cfg
            .stories
            .iter()
            .map(|s| s.entities.iter().map(|e| registry.intern(e)).collect())
            .collect();
        let background: Vec<VertexId> = (0..cfg.n_background_entities)
            .map(|i| registry.intern(&format!("background-entity-{i}")))
            .collect();

        // Zipf-like sampling over the background entities.
        let zipf_weights: Vec<f64> = (1..=background.len())
            .map(|rank| 1.0 / (rank as f64).powf(cfg.zipf_exponent))
            .collect();
        let zipf_total: f64 = zipf_weights.iter().sum();
        let sample_background = |rng: &mut StdRng| -> VertexId {
            let mut x = rng.gen_range(0.0..zipf_total);
            for (i, w) in zipf_weights.iter().enumerate() {
                if x < *w {
                    return background[i];
                }
                x -= w;
            }
            background[background.len() - 1]
        };

        let total_intensity: f64 = cfg.stories.iter().map(|s| s.intensity).sum();
        let mut posts = Vec::with_capacity(cfg.n_posts);
        for i in 0..cfg.n_posts {
            let t = cfg.duration * (i as f64 + rng.gen_range(0.0..1.0)) / cfg.n_posts as f64;
            // Decide how many entities this post mentions.
            let (p0, p1, p2, _) = cfg.entity_count_mix;
            let roll: f64 = rng.gen();
            let count = if roll < p0 {
                0
            } else if roll < p0 + p1 {
                1
            } else if roll < p0 + p1 + p2 {
                2
            } else {
                3 + usize::from(rng.gen_bool(0.3))
            };
            if count == 0 {
                posts.push(Post::new(t, Vec::new()));
                continue;
            }

            // Posts with 2+ entities are story posts with probability
            // proportional to the active stories' intensities; story posts
            // mention one facet (a small subset) of the story.
            let active: Vec<usize> = cfg
                .stories
                .iter()
                .enumerate()
                .filter(|(_, s)| t >= s.start && t <= s.end)
                .map(|(i, _)| i)
                .collect();
            let is_story_post =
                count >= 2 && !active.is_empty() && rng.gen_bool(total_intensity.clamp(0.05, 1.0));
            let mut entities: Vec<VertexId> = if is_story_post {
                // Pick an active story weighted by intensity.
                let weights: Vec<f64> = active.iter().map(|&i| cfg.stories[i].intensity).collect();
                let wsum: f64 = weights.iter().sum();
                let mut x = rng.gen_range(0.0..wsum.max(1e-9));
                let mut chosen = active[0];
                for (idx, w) in active.iter().zip(weights.iter()) {
                    if x < *w {
                        chosen = *idx;
                        break;
                    }
                    x -= w;
                }
                let story = &story_vertices[chosen];
                // A facet: `count` entities of the story (post length limits
                // mean a post usually covers one facet, not the whole story).
                let mut facet: Vec<VertexId> = Vec::new();
                let facet_size = count.min(story.len());
                let offset = rng.gen_range(0..story.len());
                for j in 0..facet_size {
                    facet.push(story[(offset + j) % story.len()]);
                }
                facet
            } else {
                (0..count).map(|_| sample_background(&mut rng)).collect()
            };
            // Occasionally mix a background entity into a story post (noise).
            if is_story_post && rng.gen_bool(0.1) {
                entities.push(sample_background(&mut rng));
            }
            posts.push(Post::new(t, entities));
        }

        SimulatedCorpus {
            registry,
            posts,
            story_vertices,
        }
    }

    /// The configuration used by this simulator.
    pub fn config(&self) -> &TweetSimulatorConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyndens_stream::ChiSquareCorrelation;

    fn small_config() -> TweetSimulatorConfig {
        TweetSimulatorConfig {
            n_posts: 5_000,
            n_background_entities: 100,
            ..TweetSimulatorConfig::default()
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = TweetSimulator::new(small_config()).generate();
        let b = TweetSimulator::new(small_config()).generate();
        assert_eq!(a.posts, b.posts);
        assert_eq!(a.posts.len(), 5_000);
    }

    #[test]
    fn entity_count_mix_roughly_matches() {
        let corpus = TweetSimulator::new(small_config()).generate();
        let zero = corpus
            .posts
            .iter()
            .filter(|p| p.entity_count() == 0)
            .count() as f64;
        let one = corpus
            .posts
            .iter()
            .filter(|p| p.entity_count() == 1)
            .count() as f64;
        let two_plus = corpus
            .posts
            .iter()
            .filter(|p| p.entity_count() >= 2)
            .count() as f64;
        let n = corpus.posts.len() as f64;
        assert!(
            (zero / n - 0.765).abs() < 0.05,
            "zero-entity fraction {}",
            zero / n
        );
        assert!(
            (one / n - 0.183).abs() < 0.05,
            "one-entity fraction {}",
            one / n
        );
        assert!(two_plus / n > 0.02 && two_plus / n < 0.12);
    }

    #[test]
    fn timestamps_are_monotone_and_within_duration() {
        let corpus = TweetSimulator::new(small_config()).generate();
        let cfg = small_config();
        let mut last = 0.0;
        for p in &corpus.posts {
            assert!(p.timestamp >= last - 1e-9);
            assert!(p.timestamp <= cfg.duration + 1.0);
            last = p.timestamp;
        }
    }

    #[test]
    fn story_entities_cooccur_more_than_background_pairs() {
        let corpus = TweetSimulator::new(small_config()).generate();
        // Count co-mentions of the first facet of the "libya crisis" story.
        let libya = &corpus.story_vertices[2];
        let story_pair = (libya[0], libya[1]);
        let mut story_count = 0usize;
        let mut background_pairs = 0usize;
        for p in &corpus.posts {
            for (a, b) in p.entity_pairs() {
                if (a, b) == story_pair || (b, a) == story_pair {
                    story_count += 1;
                } else {
                    background_pairs += 1;
                }
            }
        }
        assert!(
            story_count > 10,
            "story pair only co-mentioned {story_count} times"
        );
        // Background pairs exist but no single background pair dominates like
        // the story pair does; compare against the average.
        assert!(background_pairs > 0);
    }

    #[test]
    fn corpus_converts_to_updates_and_surfaces_the_story() {
        use dyndens_core::{DynDens, DynDensConfig};
        use dyndens_density::AvgWeight;

        let corpus = TweetSimulator::new(small_config()).generate();
        let updates = corpus.to_updates(ChiSquareCorrelation::default(), Some(2.0 * 3600.0));
        assert!(!updates.is_empty());
        let mut engine = DynDens::new(
            AvgWeight,
            DynDensConfig::new(0.4, 5).with_delta_it_fraction(0.3),
        );
        for u in &updates {
            engine.apply_update(*u);
        }
        engine.validate().unwrap();
        // At the end of the day the late-breaking raid story should be dense:
        // at least one output-dense subgraph contains two of its entities.
        let raid: Vec<VertexId> = corpus.story_vertices[0].clone();
        let hit = engine
            .output_dense_subgraphs()
            .iter()
            .any(|(set, _)| set.iter().filter(|v| raid.contains(v)).count() >= 2);
        assert!(hit, "the planted raid story was not surfaced");
    }

    #[test]
    fn blog_profile_mentions_more_entities_per_post() {
        let tweets = TweetSimulator::new(small_config()).generate();
        let blog_cfg = TweetSimulatorConfig {
            n_posts: 2_000,
            n_background_entities: 100,
            ..TweetSimulatorConfig::blog_profile()
        };
        let blogs = TweetSimulator::new(blog_cfg).generate();
        let avg = |posts: &[Post]| {
            posts.iter().map(Post::entity_count).sum::<usize>() as f64 / posts.len() as f64
        };
        assert!(avg(&blogs.posts) > avg(&tweets.posts));
    }
}
