//! Synthetic edge weight update generators.
//!
//! Four strategies reproduce the synthetic graphs of the paper's
//! threshold-adjustment evaluation (Section 6.2):
//!
//! * `Random` — updates pick an edge uniformly at random;
//! * `EdgePreferential` — with probability `p_bin` the updated edge is drawn
//!   from a pre-defined set of "hot" edges, otherwise uniformly at random;
//! * `NodePreferential` — with probability `p_bin` both endpoints are drawn
//!   from a pre-defined set of "hot" vertices;
//! * `NodePreferentialBoolean` — like `NodePreferential` but weights are 0/1
//!   (updates set an edge fully present or fully absent).
//!
//! A fifth strategy, `NearClique`, reproduces the mixture used in the
//! heuristics ablation (Section 7.3): most updates fall inside small planted
//! vertex groups (forming near-cliques), the rest are uniform background
//! noise, and updates that would create too-dense subgraphs can be rejected so
//! the ablation isolates the exploration-pruning heuristics from the
//! `ImplicitTooDense` machinery.

use dyndens_graph::{EdgeUpdate, FxHashMap, VertexId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// The edge-selection strategy of a synthetic workload.
#[derive(Debug, Clone, PartialEq)]
pub enum SyntheticStrategy {
    /// Uniformly random edges, weights uniform in `(0, max_magnitude]`.
    Random,
    /// A fraction of updates hits a fixed set of pre-defined edges.
    EdgePreferential {
        /// Number of pre-defined "hot" edges.
        hot_edges: usize,
        /// Probability that an update hits a hot edge.
        p_bin: f64,
    },
    /// A fraction of updates connects pre-defined "hot" vertices.
    NodePreferential {
        /// Number of pre-defined hot vertices.
        hot_nodes: usize,
        /// Probability that an update falls inside the hot vertex set.
        p_bin: f64,
    },
    /// Like `NodePreferential` but edges are boolean (weight jumps to 1 on a
    /// positive update and back to 0 on a negative one).
    NodePreferentialBoolean {
        /// Number of pre-defined hot vertices.
        hot_nodes: usize,
        /// Probability that an update falls inside the hot vertex set.
        p_bin: f64,
    },
    /// Near-cliques: most updates fall inside planted vertex groups.
    NearClique {
        /// Number of planted groups.
        groups: usize,
        /// Vertices per planted group.
        group_size: usize,
        /// Probability that an update falls inside a planted group.
        p_group: f64,
        /// When set, updates that would push any planted pair's weight to or
        /// beyond this value are rejected (regenerated), keeping subgraphs
        /// below the too-dense regime as in the Section 7.3 setup.
        max_pair_weight: Option<f64>,
    },
}

/// Configuration of a synthetic workload.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticConfig {
    /// Number of vertices in the universe.
    pub n_vertices: usize,
    /// Number of updates to generate.
    pub n_updates: usize,
    /// Probability that an update is negative.
    pub negative_prob: f64,
    /// Maximum magnitude of a single update (weights are uniform in
    /// `(0, max_magnitude]`; ignored by the boolean strategy).
    pub max_magnitude: f64,
    /// The edge-selection strategy.
    pub strategy: SyntheticStrategy,
    /// RNG seed.
    pub seed: u64,
}

impl SyntheticConfig {
    /// The paper's `random` graphs: uniform edges, weights in `(0, 1]`, 10%
    /// negative updates.
    pub fn random(n_vertices: usize, n_updates: usize, seed: u64) -> Self {
        SyntheticConfig {
            n_vertices,
            n_updates,
            negative_prob: 0.1,
            max_magnitude: 1.0,
            strategy: SyntheticStrategy::Random,
            seed,
        }
    }

    /// The paper's `edgePreferential` graphs (20% of updates hit hot edges).
    pub fn edge_preferential(n_vertices: usize, n_updates: usize, seed: u64) -> Self {
        SyntheticConfig {
            strategy: SyntheticStrategy::EdgePreferential {
                hot_edges: (n_vertices / 10).max(8),
                p_bin: 0.2,
            },
            ..Self::random(n_vertices, n_updates, seed)
        }
    }

    /// The paper's `nodePreferential` graphs (20% of updates stay within hot
    /// vertices).
    pub fn node_preferential(n_vertices: usize, n_updates: usize, seed: u64) -> Self {
        SyntheticConfig {
            strategy: SyntheticStrategy::NodePreferential {
                hot_nodes: (n_vertices / 20).max(8),
                p_bin: 0.2,
            },
            ..Self::random(n_vertices, n_updates, seed)
        }
    }

    /// The paper's `nodePreferentialBoolean` graphs (0/1 weights).
    pub fn node_preferential_boolean(n_vertices: usize, n_updates: usize, seed: u64) -> Self {
        SyntheticConfig {
            strategy: SyntheticStrategy::NodePreferentialBoolean {
                hot_nodes: (n_vertices / 20).max(8),
                p_bin: 0.2,
            },
            ..Self::random(n_vertices, n_updates, seed)
        }
    }

    /// The near-clique mixture of Section 7.3 (90% of updates inside planted
    /// 10-vertex groups, magnitudes in `(0, 0.1]`, 30% negative).
    pub fn near_clique(n_vertices: usize, n_updates: usize, seed: u64) -> Self {
        SyntheticConfig {
            n_vertices,
            n_updates,
            negative_prob: 0.3,
            max_magnitude: 0.1,
            strategy: SyntheticStrategy::NearClique {
                groups: (n_vertices / 1000).max(4),
                group_size: 10,
                p_group: 0.9,
                max_pair_weight: None,
            },
            seed,
        }
    }
}

/// A generated synthetic workload: the update stream plus the bookkeeping
/// needed to keep weights non-negative and strategies stateful.
#[derive(Debug, Clone)]
pub struct SyntheticWorkload {
    config: SyntheticConfig,
    updates: Vec<EdgeUpdate>,
    planted_groups: Vec<Vec<VertexId>>,
}

impl SyntheticWorkload {
    /// Generates the workload described by `config`.
    pub fn generate(config: SyntheticConfig) -> Self {
        assert!(config.n_vertices >= 4, "need at least 4 vertices");
        assert!((0.0..=1.0).contains(&config.negative_prob));
        let mut rng = StdRng::seed_from_u64(config.seed);
        let n = config.n_vertices as u32;

        // Pre-defined hot edges / nodes / groups, depending on the strategy.
        let mut hot_edges: Vec<(VertexId, VertexId)> = Vec::new();
        let mut hot_nodes: Vec<VertexId> = Vec::new();
        let mut planted_groups: Vec<Vec<VertexId>> = Vec::new();
        match &config.strategy {
            SyntheticStrategy::EdgePreferential { hot_edges: k, .. } => {
                while hot_edges.len() < *k {
                    let a = rng.gen_range(0..n);
                    let b = rng.gen_range(0..n);
                    if a != b {
                        hot_edges.push((VertexId(a.min(b)), VertexId(a.max(b))));
                    }
                }
            }
            SyntheticStrategy::NodePreferential { hot_nodes: k, .. }
            | SyntheticStrategy::NodePreferentialBoolean { hot_nodes: k, .. } => {
                let mut all: Vec<u32> = (0..n).collect();
                all.shuffle(&mut rng);
                hot_nodes = all.into_iter().take(*k).map(VertexId).collect();
            }
            SyntheticStrategy::NearClique {
                groups, group_size, ..
            } => {
                let mut all: Vec<u32> = (0..n).collect();
                all.shuffle(&mut rng);
                for g in 0..*groups {
                    let start = g * group_size;
                    if start + group_size > all.len() {
                        break;
                    }
                    planted_groups.push(
                        all[start..start + group_size]
                            .iter()
                            .copied()
                            .map(VertexId)
                            .collect(),
                    );
                }
            }
            SyntheticStrategy::Random => {}
        }

        // Current weights, to clamp negative updates and enforce strategy
        // constraints.
        let mut weights: FxHashMap<(VertexId, VertexId), f64> = FxHashMap::default();
        let mut updates = Vec::with_capacity(config.n_updates);
        let mut attempts = 0usize;
        let max_attempts = config.n_updates * 20;

        while updates.len() < config.n_updates && attempts < max_attempts {
            attempts += 1;
            let (a, b) =
                Self::pick_edge(&config, &mut rng, &hot_edges, &hot_nodes, &planted_groups);
            let key = (a.min(b), a.max(b));
            let current = weights.get(&key).copied().unwrap_or(0.0);
            let negative = rng.gen_bool(config.negative_prob);

            let delta = match &config.strategy {
                SyntheticStrategy::NodePreferentialBoolean { .. } => {
                    if negative {
                        if current <= 0.0 {
                            continue;
                        }
                        -current
                    } else {
                        if current >= 1.0 {
                            continue;
                        }
                        1.0 - current
                    }
                }
                _ => {
                    let magnitude = rng.gen_range(0.0..config.max_magnitude).max(1e-6);
                    if negative {
                        if current <= 0.0 {
                            continue;
                        }
                        -magnitude.min(current)
                    } else {
                        magnitude
                    }
                }
            };

            // Optional rejection of updates that would push a pair into the
            // too-dense regime (Section 7.3).
            if let SyntheticStrategy::NearClique {
                max_pair_weight: Some(cap),
                ..
            } = &config.strategy
            {
                if delta > 0.0 && current + delta >= *cap {
                    continue;
                }
            }

            let new_weight = current + delta;
            if new_weight <= 1e-12 {
                weights.remove(&key);
            } else {
                weights.insert(key, new_weight);
            }
            updates.push(EdgeUpdate::new(key.0, key.1, delta));
        }

        SyntheticWorkload {
            config,
            updates,
            planted_groups,
        }
    }

    fn pick_edge(
        config: &SyntheticConfig,
        rng: &mut StdRng,
        hot_edges: &[(VertexId, VertexId)],
        hot_nodes: &[VertexId],
        planted_groups: &[Vec<VertexId>],
    ) -> (VertexId, VertexId) {
        let n = config.n_vertices as u32;
        let uniform = |rng: &mut StdRng| -> (VertexId, VertexId) {
            loop {
                let a = rng.gen_range(0..n);
                let b = rng.gen_range(0..n);
                if a != b {
                    return (VertexId(a), VertexId(b));
                }
            }
        };
        match &config.strategy {
            SyntheticStrategy::Random => uniform(rng),
            SyntheticStrategy::EdgePreferential { p_bin, .. } => {
                if !hot_edges.is_empty() && rng.gen_bool(*p_bin) {
                    hot_edges[rng.gen_range(0..hot_edges.len())]
                } else {
                    uniform(rng)
                }
            }
            SyntheticStrategy::NodePreferential { p_bin, .. }
            | SyntheticStrategy::NodePreferentialBoolean { p_bin, .. } => {
                if hot_nodes.len() >= 2 && rng.gen_bool(*p_bin) {
                    loop {
                        let a = hot_nodes[rng.gen_range(0..hot_nodes.len())];
                        let b = hot_nodes[rng.gen_range(0..hot_nodes.len())];
                        if a != b {
                            return (a, b);
                        }
                    }
                } else {
                    uniform(rng)
                }
            }
            SyntheticStrategy::NearClique { p_group, .. } => {
                if !planted_groups.is_empty() && rng.gen_bool(*p_group) {
                    let group = &planted_groups[rng.gen_range(0..planted_groups.len())];
                    loop {
                        let a = group[rng.gen_range(0..group.len())];
                        let b = group[rng.gen_range(0..group.len())];
                        if a != b {
                            return (a, b);
                        }
                    }
                } else {
                    uniform(rng)
                }
            }
        }
    }

    /// The generated update stream.
    pub fn updates(&self) -> &[EdgeUpdate] {
        &self.updates
    }

    /// Consumes the workload, yielding the update stream.
    pub fn into_updates(self) -> Vec<EdgeUpdate> {
        self.updates
    }

    /// The configuration this workload was generated from.
    pub fn config(&self) -> &SyntheticConfig {
        &self.config
    }

    /// The planted vertex groups (non-empty only for the `NearClique`
    /// strategy).
    pub fn planted_groups(&self) -> &[Vec<VertexId>] {
        &self.planted_groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyndens_graph::DynamicGraph;

    fn replay(updates: &[EdgeUpdate]) -> DynamicGraph {
        let mut g = DynamicGraph::new();
        for u in updates {
            g.apply_update(u);
        }
        g
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = SyntheticWorkload::generate(SyntheticConfig::random(100, 500, 7));
        let b = SyntheticWorkload::generate(SyntheticConfig::random(100, 500, 7));
        let c = SyntheticWorkload::generate(SyntheticConfig::random(100, 500, 8));
        assert_eq!(a.updates(), b.updates());
        assert_ne!(a.updates(), c.updates());
        assert_eq!(a.updates().len(), 500);
    }

    #[test]
    fn weights_never_go_negative() {
        for config in [
            SyntheticConfig::random(60, 800, 1),
            SyntheticConfig::edge_preferential(60, 800, 2),
            SyntheticConfig::node_preferential(60, 800, 3),
            SyntheticConfig::node_preferential_boolean(60, 800, 4),
            SyntheticConfig::near_clique(60, 800, 5),
        ] {
            let w = SyntheticWorkload::generate(config.clone());
            let mut g = DynamicGraph::new();
            for u in w.updates() {
                g.apply_update(u);
            }
            for (_, _, weight) in g.edges() {
                assert!(
                    weight >= -1e-12,
                    "negative weight under {:?}",
                    config.strategy
                );
            }
        }
    }

    #[test]
    fn negative_fraction_roughly_matches() {
        let w = SyntheticWorkload::generate(SyntheticConfig::random(80, 4000, 11));
        let neg = w.updates().iter().filter(|u| u.is_negative()).count();
        let frac = neg as f64 / w.updates().len() as f64;
        // Configured 10%; some negatives are skipped when the edge is absent.
        assert!(frac > 0.02 && frac < 0.15, "negative fraction {frac}");
    }

    #[test]
    fn boolean_strategy_keeps_weights_binary() {
        let w =
            SyntheticWorkload::generate(SyntheticConfig::node_preferential_boolean(50, 1500, 21));
        let g = replay(w.updates());
        for (_, _, weight) in g.edges() {
            assert!((weight - 1.0).abs() < 1e-9, "non-binary weight {weight}");
        }
    }

    #[test]
    fn edge_preferential_concentrates_updates() {
        let w = SyntheticWorkload::generate(SyntheticConfig::edge_preferential(200, 4000, 33));
        let mut counts: FxHashMap<(VertexId, VertexId), usize> = FxHashMap::default();
        for u in w.updates() {
            *counts.entry(u.endpoints()).or_insert(0) += 1;
        }
        let max = counts.values().copied().max().unwrap();
        // With ~20% of 4000 updates spread over <=20 hot edges, the hottest
        // edge must see far more traffic than a uniform edge would (~0.2).
        assert!(max >= 10, "expected a hot edge, max multiplicity {max}");
    }

    #[test]
    fn near_clique_groups_receive_most_updates() {
        let config = SyntheticConfig::near_clique(4000, 3000, 9);
        let w = SyntheticWorkload::generate(config);
        assert!(!w.planted_groups().is_empty());
        let in_group = |v: VertexId| w.planted_groups().iter().any(|g| g.contains(&v));
        let inside = w
            .updates()
            .iter()
            .filter(|u| in_group(u.a) && in_group(u.b))
            .count();
        let frac = inside as f64 / w.updates().len() as f64;
        assert!(
            frac > 0.8,
            "only {frac} of updates fall inside planted groups"
        );
    }

    #[test]
    fn near_clique_rejection_caps_pair_weights() {
        let mut config = SyntheticConfig::near_clique(500, 3000, 13);
        if let SyntheticStrategy::NearClique {
            max_pair_weight, ..
        } = &mut config.strategy
        {
            *max_pair_weight = Some(0.25);
        }
        let w = SyntheticWorkload::generate(config);
        let g = replay(w.updates());
        for (_, _, weight) in g.edges() {
            assert!(weight < 0.25 + 1e-9, "pair weight {weight} exceeds the cap");
        }
    }
}
