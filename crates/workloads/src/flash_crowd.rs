//! The flash-crowd scenario: one story absorbs ~100x the traffic of any
//! background community within seconds — the breaking-news burst that is the
//! `Rebalancer`'s reason to exist.
//!
//! The stream has three phases over the update index:
//!
//! * **calm** (first 30%) — balanced background chatter across all residue
//!   classes, indistinguishable from [`AlignedCommunities`];
//! * **burst** (30%–60%) — ~99% of all updates hit the single hot story's
//!   pairs. Pair weights would saturate the too-dense cap almost instantly
//!   under that rate, so the generator *churns* saturated pairs (alternating
//!   reinforce/weaken at the cap) — traffic volume stays at 100x while
//!   weights stay inside `[0, 1.45]`, exactly how repeated co-mentions of an
//!   already-saturated association behave after measure normalisation;
//! * **cooldown** (last 40%) — background resumes and the crowd drifts away:
//!   hot-story pairs receive occasional decay-like negative updates.
//!
//! All the hot story's vertices live in one congruence class, so under
//! `ShardFn::Modulo` the burst lands on exactly one shard: its window share
//! rockets from ~1/n to ~99%, which is the skew signal
//! [`RebalancePolicy::min_share`] is tuned against — while the calm phase
//! must *not* trip it (background shares sit near 1/n). The regression suite
//! pins both sides.
//!
//! [`AlignedCommunities`]: crate::AlignedCommunities
//! [`RebalancePolicy::min_share`]: dyndens_shard::RebalancePolicy

use dyndens_graph::{EdgeUpdate, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::workload::{class_vertex, WeightBook, Workload};

const ALIGNMENT: usize = 8;
/// Background communities: two per residue class, sizes 4–5.
const N_BACKGROUND: usize = 16;
const BLOCK_SPAN: usize = 8;
/// The residue class the hot story lives in (odd, so it lands on shard 1 of
/// a 2-shard modulo fleet — distinguishable from "everything defaults to
/// slot 0" bugs).
const HOT_CLASS: usize = 5;
/// Entities in the hot story.
const HOT_SIZE: usize = 6;

/// The flash-crowd workload. See the [module docs](self).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlashCrowd {
    /// Stream length in updates.
    pub n_updates: usize,
    /// RNG seed.
    pub seed: u64,
}

impl FlashCrowd {
    /// A flash-crowd stream of `n_updates` updates.
    pub fn new(n_updates: usize, seed: u64) -> Self {
        FlashCrowd { n_updates, seed }
    }

    /// The update-index window of the burst phase: `[30%, 60%)` of the
    /// stream. Rebalancer regression tests assert a split fires *inside*
    /// this window (plus one policy check of slack) and never before it.
    pub fn burst_range(&self) -> std::ops::Range<usize> {
        (self.n_updates * 3 / 10)..(self.n_updates * 6 / 10)
    }

    /// The residue class (mod [`alignment`](Workload::alignment)) the hot
    /// story's entities share — i.e. the base shard `HOT_CLASS % n_shards`
    /// that absorbs the burst under `ShardFn::Modulo`.
    pub fn hot_class(&self) -> usize {
        HOT_CLASS
    }

    fn background(&self) -> Vec<Vec<VertexId>> {
        (0..N_BACKGROUND)
            .map(|g| {
                // One size-4 and one size-5 community per residue class
                // (g and g + 8 share class g % 8): community capacity — and
                // with it the saturation dynamics that shape who absorbs
                // retried updates — must not correlate with the shard a
                // class routes to, or the calm phase itself would drift
                // past the skew threshold.
                let size = 4 + (g / ALIGNMENT) % 2;
                (0..size)
                    .map(|i| class_vertex(g, BLOCK_SPAN, i, ALIGNMENT, g % ALIGNMENT))
                    .collect()
            })
            .collect()
    }

    fn hot_story(&self) -> Vec<VertexId> {
        // Block N_BACKGROUND is untouched by the background communities.
        (0..HOT_SIZE)
            .map(|i| class_vertex(N_BACKGROUND, BLOCK_SPAN, i, ALIGNMENT, HOT_CLASS))
            .collect()
    }
}

impl Workload for FlashCrowd {
    fn name(&self) -> &'static str {
        "flash_crowd"
    }

    fn alignment(&self) -> usize {
        ALIGNMENT
    }

    fn updates(&self) -> Vec<EdgeUpdate> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let background = self.background();
        let hot = self.hot_story();
        let burst = self.burst_range();
        let mut book = WeightBook::new();
        let mut updates = Vec::with_capacity(self.n_updates);

        let background_update = |rng: &mut StdRng, book: &mut WeightBook| -> Option<EdgeUpdate> {
            let group = &background[rng.gen_range(0..background.len())];
            let a = group[rng.gen_range(0..group.len())];
            let b = group[rng.gen_range(0..group.len())];
            if a == b {
                return None;
            }
            let magnitude = rng.gen_range(0.02..0.12);
            if rng.gen_bool(0.15) {
                book.weaken(a, b, magnitude)
            } else {
                book.reinforce(a, b, magnitude)
            }
        };

        while updates.len() < self.n_updates {
            let i = updates.len();
            let update = if burst.contains(&i) && !rng.gen_bool(0.01) {
                // The burst: ~99% of traffic lands on the hot story's pairs.
                let a = hot[rng.gen_range(0..hot.len())];
                let b = hot[rng.gen_range(0..hot.len())];
                if a == b {
                    continue;
                }
                book.churn(a, b, rng.gen_range(0.02..0.12))
            } else if i >= burst.end && rng.gen_bool(0.10) {
                // Cooldown: the crowd drifts away, hot pairs decay.
                let a = hot[rng.gen_range(0..hot.len())];
                let b = hot[rng.gen_range(0..hot.len())];
                if a == b {
                    continue;
                }
                book.weaken(a, b, rng.gen_range(0.02..0.12))
            } else {
                background_update(&mut rng, &mut book)
            };
            if let Some(u) = update {
                updates.push(u);
            }
        }
        updates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::MAX_PAIR_WEIGHT;
    use dyndens_graph::FxHashMap;

    #[test]
    fn deterministic_aligned_and_capped() {
        let w = FlashCrowd::new(8_000, 11);
        let updates = w.updates();
        assert_eq!(updates.len(), 8_000);
        assert_eq!(updates, w.updates());
        let mut weights: FxHashMap<(VertexId, VertexId), f64> = FxHashMap::default();
        for u in &updates {
            assert_eq!(u.a.0 % 8, u.b.0 % 8, "cross-class edge {u:?}");
            let entry = weights.entry((u.a, u.b)).or_insert(0.0);
            *entry += u.delta;
            assert!(*entry >= -1e-9 && *entry <= MAX_PAIR_WEIGHT + 1e-9);
        }
    }

    #[test]
    fn burst_concentrates_traffic_on_the_hot_class() {
        let w = FlashCrowd::new(10_000, 7);
        let updates = w.updates();
        let burst = w.burst_range();
        let hot_in_burst = updates[burst.clone()]
            .iter()
            .filter(|u| u.a.0 as usize % 8 == w.hot_class())
            .count();
        assert!(
            hot_in_burst as f64 >= 0.95 * burst.len() as f64,
            "burst skew too weak: {hot_in_burst}/{}",
            burst.len()
        );
        // The calm phase is balanced: the hot class carries roughly its fair
        // share (2 of 16 background communities), nowhere near a skew signal.
        let calm = &updates[..burst.start];
        let hot_in_calm = calm
            .iter()
            .filter(|u| u.a.0 as usize % 8 == w.hot_class())
            .count();
        assert!(
            (hot_in_calm as f64) < 0.3 * calm.len() as f64,
            "calm phase already skewed: {hot_in_calm}/{}",
            calm.len()
        );
    }
}
