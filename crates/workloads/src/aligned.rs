//! The partition-aligned planted-community stream — the canonical workload
//! of the sharded subsystem's equivalence and scaling suites, now shared by
//! the scenario library (it moved here from `dyndens-bench`, which still
//! re-exports it).

use dyndens_graph::{EdgeUpdate, FxHashMap, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::workload::{Workload, MAX_PAIR_WEIGHT};

/// A partition-aligned planted-community update stream for the sharded
/// subsystem's scaling and equivalence experiments.
///
/// Every community's vertices share one congruence class modulo `alignment`,
/// so under `ShardFn::Modulo` with any shard count dividing `alignment` each
/// community — and therefore each of its edges and dense subgraphs — is owned
/// by exactly one shard. Per-pair weights are capped at 1.45, which (for the
/// canonical `AvgWeight`, `T = 1`, `Nmax = 4`, `delta_it = 0.15` setup) keeps
/// every subgraph below the too-dense regime: pairs would need score ≥ 2.85
/// and triangles ≥ 6 to become too-dense, and no cross-community subgraph can
/// clear the dense bound from edge-disjoint parts. Together these two
/// properties make the `dyndens-shard` partitioning invariant hold exactly,
/// so the union of per-shard answers is *identical* to the single-engine
/// answer and the benchmarks measure pure ingest scaling.
pub fn shard_aligned_stream(n_updates: usize, alignment: usize, seed: u64) -> Vec<EdgeUpdate> {
    assert!(alignment >= 1, "alignment must be at least 1");
    const N_GROUPS: usize = 32;
    const GROUP_SPAN: usize = 8;

    let mut rng = StdRng::seed_from_u64(seed);
    // Community g draws from residue class g % alignment; disjoint blocks of
    // the class keep distinct communities vertex-disjoint.
    let groups: Vec<Vec<VertexId>> = (0..N_GROUPS)
        .map(|g| {
            let size = 4 + g % 2; // communities of 4 or 5 entities
            (0..size)
                .map(|i| VertexId(((g * GROUP_SPAN + i) * alignment + g % alignment) as u32))
                .collect()
        })
        .collect();

    let mut weights: FxHashMap<(VertexId, VertexId), f64> = FxHashMap::default();
    let mut updates = Vec::with_capacity(n_updates);
    while updates.len() < n_updates {
        let group = &groups[rng.gen_range(0..groups.len())];
        let a = group[rng.gen_range(0..group.len())];
        let b = group[rng.gen_range(0..group.len())];
        if a == b {
            continue;
        }
        let key = (a.min(b), a.max(b));
        let current = weights.get(&key).copied().unwrap_or(0.0);
        let magnitude: f64 = rng.gen_range(0.02..0.12);
        let delta = if rng.gen_bool(0.15) {
            if current <= 0.0 {
                continue;
            }
            -magnitude.min(current)
        } else {
            // Clamp so the pair never enters the too-dense regime.
            magnitude.min(MAX_PAIR_WEIGHT - current)
        };
        if delta.abs() < 1e-9 {
            continue;
        }
        let new_weight = current + delta;
        if new_weight <= 1e-12 {
            weights.remove(&key);
        } else {
            weights.insert(key, new_weight);
        }
        updates.push(EdgeUpdate::new(key.0, key.1, delta));
    }
    updates
}

/// The [`shard_aligned_stream`] behind the [`Workload`] trait: the friendly
/// baseline of the scenario matrix (balanced classes, steady rates), against
/// which the adversarial scenarios are judged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlignedCommunities {
    /// Stream length in updates.
    pub n_updates: usize,
    /// RNG seed.
    pub seed: u64,
}

impl AlignedCommunities {
    /// A balanced planted-community stream of `n_updates` updates.
    pub fn new(n_updates: usize, seed: u64) -> Self {
        AlignedCommunities { n_updates, seed }
    }

    /// The exact 50k-update stream the repository-level equivalence suites
    /// (`tests/sharded_equivalence.rs` and friends) are built on.
    pub fn canonical() -> Self {
        AlignedCommunities::new(50_000, 2012)
    }
}

impl Workload for AlignedCommunities {
    fn name(&self) -> &'static str {
        "aligned_communities"
    }

    fn alignment(&self) -> usize {
        8
    }

    fn updates(&self) -> Vec<EdgeUpdate> {
        shard_aligned_stream(self.n_updates, 8, self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyndens_graph::FxHashMap;

    #[test]
    fn shard_aligned_stream_respects_alignment_and_caps() {
        let updates = shard_aligned_stream(5_000, 8, 42);
        assert_eq!(updates.len(), 5_000);
        assert_eq!(updates, shard_aligned_stream(5_000, 8, 42));
        assert_eq!(updates, AlignedCommunities::new(5_000, 42).updates());
        let mut weights: FxHashMap<(VertexId, VertexId), f64> = FxHashMap::default();
        for u in &updates {
            // Both endpoints share a congruence class mod 8 (and mod 2/4).
            assert_eq!(u.a.0 % 8, u.b.0 % 8, "cross-class edge {u:?}");
            let w = weights.entry((u.a, u.b)).or_insert(0.0);
            *w += u.delta;
            assert!(*w >= -1e-9, "negative weight after {u:?}");
            assert!(
                *w <= MAX_PAIR_WEIGHT + 1e-9,
                "weight above the too-dense cap after {u:?}"
            );
        }
        assert!(updates.iter().any(|u| u.is_negative()));
    }
}
