//! The shared differential oracle: drives any [`Workload`] through the full
//! stack and asserts **bit-exact** story sets at every checkpoint.
//!
//! One oracle run compares a single-engine reference against four legs:
//!
//! 1. **sharded** — `ShardedDynDens` with 1, 2 and 4 shards;
//! 2. **recovery** — a persistent 2-shard fleet killed mid-stream (drop
//!    without shutdown) and recovered (newest snapshot + WAL tail replay);
//! 3. **rebalance** — a 2-shard fleet split mid-stream, then the sibling
//!    pair merged back, topology changing twice under live ingest;
//! 4. **serve** — a push-fed [`Mirror`] subscribed over TCP, plus a
//!    late-joining mirror that bootstraps purely from resync snapshots.
//!
//! "Bit-exact" is literal: every story's density must carry the same `f64`
//! bit pattern as the single engine's, which the stack guarantees under the
//! [`Workload`] contract (partition alignment + capped weights keep the
//! partitioning invariant exact, and the engine's canonical processing
//! order makes scores reproducible to the bit). The oracle *checks* the
//! precondition too: a workload that drifts into the too-dense regime
//! (star markers) fails its report rather than silently comparing
//! approximations.
//!
//! The repository-level equivalence suites (`tests/sharded_equivalence.rs`,
//! `tests/workload_scenarios.rs`, ...) are thin wrappers over this module;
//! the `scenario_matrix` bench emits one `BENCH_scenarios.json` row per
//! workload from the same [`OracleReport`].
//!
//! The **cross-backend differential harness** generalises the same legs
//! over every pluggable [`Backend`]: each backend's sharded, recovered,
//! rebalanced and served deployments are asserted bit-identical to a single
//! engine of the same backend (the seam's determinism contract), then the
//! backend is compared against the DynDens referee under its declared
//! [`CompareMode`] — bit-exactness for `recompute` at rebuild boundaries, a
//! top-q density-ratio bound for approximate backends. The `backend_matrix`
//! bench emits one `BENCH_backends.json` row per backend × workload from
//! the resulting [`BackendReport`]s.

use std::path::PathBuf;
use std::time::Duration;

use dyndens_baselines::{RecomputeBlueprint, TopKPeelingBlueprint};
use dyndens_core::{DynDens, DynDensBlueprint, DynDensConfig, EngineBlueprint, MaintenanceEngine};
use dyndens_density::AvgWeight;
use dyndens_graph::{EdgeUpdate, VertexSet};
use dyndens_serve::{Client, Mirror, StoryServer};
use dyndens_shard::{
    FsyncPolicy, PersistenceConfig, RebalancePolicy, ShardConfig, ShardFn, ShardedDynDens,
    ShardedFleet,
};

use crate::workload::Workload;

/// Ingest chunk size used by every leg (matches the equivalence suites).
const CHUNK: usize = 256;

/// The canonical engine configuration of the equivalence suites: `T = 1`,
/// `Nmax = 4`, `delta_it = 0.15` over [`AvgWeight`].
pub fn engine_config() -> DynDensConfig {
    DynDensConfig::new(1.0, 4).with_delta_it(0.15)
}

/// The canonical sharded configuration: modulo routing (what partition
/// alignment is defined against) with 64-update micro-batches.
pub fn shard_config(n_shards: usize) -> ShardConfig {
    ShardConfig::new(n_shards)
        .with_shard_fn(ShardFn::Modulo)
        .with_max_batch(64)
}

/// A deterministic [`RebalancePolicy`] for scenario tests and benches: the
/// queue-depth trigger is disabled (queue depth depends on thread timing;
/// the tests drive decisions after `flush`, when queues are empty anyway)
/// and the share window is scaled to `window_updates` so the production
/// 60%-split / 5%-merge thresholds can be exercised on short streams.
pub fn scenario_policy(window_updates: u64) -> RebalancePolicy {
    RebalancePolicy {
        min_queue_depth: u64::MAX,
        min_total_updates: window_updates,
        ..RebalancePolicy::default()
    }
}

/// Story sets sorted by vertex set, densities as raw bits — the canonical
/// comparison shape: equality is bit-equality.
pub fn sorted_bits(mut sets: Vec<(VertexSet, f64)>) -> Vec<(VertexSet, u64)> {
    sets.sort_by(|a, b| a.0.cmp(&b.0));
    sets.into_iter().map(|(s, d)| (s, d.to_bits())).collect()
}

/// The outcome of one oracle leg.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LegReport {
    /// Leg name: `sharded`, `recovery`, `rebalance` or `serve`.
    pub leg: &'static str,
    /// Whether the leg's story sets matched the reference bit for bit.
    pub bit_exact: bool,
    /// What matched, or the first divergence.
    pub detail: String,
}

/// The outcome of a full oracle run over one workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleReport {
    /// The workload's [`name`](Workload::name).
    pub workload: String,
    /// Stream length in updates.
    pub n_updates: usize,
    /// Output-dense story count of the single-engine reference.
    pub output_dense: usize,
    /// Star markers the reference created — must be 0 (the too-dense
    /// precondition of exact sharded equivalence).
    pub star_markers: u64,
    /// One report per leg run.
    pub legs: Vec<LegReport>,
}

impl OracleReport {
    /// `true` when every leg matched bit for bit *and* the workload stayed
    /// below the too-dense regime.
    pub fn bit_exact(&self) -> bool {
        self.star_markers == 0 && self.legs.iter().all(|l| l.bit_exact)
    }

    /// Panics with the first divergence unless [`bit_exact`](Self::bit_exact).
    pub fn assert_bit_exact(&self) {
        assert_eq!(
            self.star_markers, 0,
            "{}: workload entered the too-dense regime, exact equivalence is off the table",
            self.workload
        );
        for leg in &self.legs {
            assert!(
                leg.bit_exact,
                "{}: {} leg diverged: {}",
                self.workload, leg.leg, leg.detail
            );
        }
    }
}

/// Which legs [`Oracle::run_legs`] drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Leg {
    /// Sharded fleet (1/2/4 shards) vs. the single engine.
    Sharded,
    /// Kill-and-recover mid-stream on a persistent 2-shard fleet.
    Recovery,
    /// Split then merge mid-stream on a 2-shard fleet.
    Rebalance,
    /// Push-fed serve [`Mirror`] plus a late-joining resync mirror.
    Serve,
}

/// All four legs, the default of [`Oracle::run`].
pub const ALL_LEGS: [Leg; 4] = [Leg::Sharded, Leg::Recovery, Leg::Rebalance, Leg::Serve];

/// The differential oracle over one materialised workload stream. See the
/// [module docs](self).
pub struct Oracle {
    name: String,
    updates: Vec<EdgeUpdate>,
}

impl Oracle {
    /// An oracle over `workload`'s update stream.
    pub fn new(workload: &dyn Workload) -> Self {
        Oracle {
            name: workload.name().to_string(),
            updates: workload.updates(),
        }
    }

    /// An oracle over a raw update stream (for streams that don't come from
    /// a [`Workload`], like the canonical 50k equivalence stream).
    pub fn from_updates(name: impl Into<String>, updates: Vec<EdgeUpdate>) -> Self {
        Oracle {
            name: name.into(),
            updates,
        }
    }

    /// The stream under test.
    pub fn updates(&self) -> &[EdgeUpdate] {
        &self.updates
    }

    /// Runs every leg. See [`run_legs`](Self::run_legs).
    pub fn run(&self) -> OracleReport {
        self.run_legs(&ALL_LEGS)
    }

    /// Builds the single-engine reference, then drives the requested legs
    /// against it. Nothing panics on divergence — the report carries the
    /// verdicts (tests call [`OracleReport::assert_bit_exact`], the bench
    /// serialises the flags).
    pub fn run_legs(&self, legs: &[Leg]) -> OracleReport {
        let (want, star_markers) = self.reference();
        let mut reports = Vec::with_capacity(legs.len());
        for leg in legs {
            reports.push(match leg {
                Leg::Sharded => self.sharded_leg(&want),
                Leg::Recovery => self.recovery_leg(&want),
                Leg::Rebalance => self.rebalance_leg(&want),
                Leg::Serve => self.serve_leg(&want),
            });
        }
        OracleReport {
            workload: self.name.clone(),
            n_updates: self.updates.len(),
            output_dense: want.len(),
            star_markers,
            legs: reports,
        }
    }

    /// The single-engine ground truth: output-dense story sets (bit form)
    /// and the star-marker count (too-dense precondition probe).
    fn reference(&self) -> (Vec<(VertexSet, u64)>, u64) {
        let mut engine = DynDens::new(AvgWeight, engine_config());
        let mut events = Vec::new();
        for u in &self.updates {
            engine.apply_update_into(*u, &mut events);
            events.clear();
        }
        engine.validate().expect("reference engine invariants");
        let markers = engine.stats().star_markers_created;
        (sorted_bits(engine.output_dense_subgraphs()), markers)
    }

    fn sharded_leg(&self, want: &[(VertexSet, u64)]) -> LegReport {
        for n_shards in [1usize, 2, 4] {
            let mut fleet = ShardedDynDens::new(AvgWeight, engine_config(), shard_config(n_shards));
            for chunk in self.updates.chunks(CHUNK) {
                fleet.apply_batch(chunk);
            }
            fleet.flush();
            if let Err(e) = fleet.validate() {
                return leg_failed("sharded", format!("{n_shards} shards: {e}"));
            }
            if let Err(detail) = compare(want, &sorted_bits(fleet.output_dense())) {
                return leg_failed("sharded", format!("{n_shards} shards: {detail}"));
            }
            if fleet.stats().updates != self.updates.len() as u64 {
                return leg_failed("sharded", format!("{n_shards} shards: ledger mismatch"));
            }
        }
        leg_ok(
            "sharded",
            format!("1/2/4 shards == single engine ({} sets)", want.len()),
        )
    }

    fn recovery_leg(&self, want: &[(VertexSet, u64)]) -> LegReport {
        let dir = self.temp_dir("recovery");
        let persistence = || {
            PersistenceConfig::new(&dir)
                .with_fsync(FsyncPolicy::Never)
                .with_snapshot_every_batches(8)
        };
        let chunks: Vec<&[EdgeUpdate]> = self.updates.chunks(CHUNK).collect();
        let kill_at = chunks.len() / 2;
        {
            let mut doomed = match ShardedDynDens::with_persistence(
                AvgWeight,
                engine_config(),
                shard_config(2),
                persistence(),
            ) {
                Ok(fleet) => fleet,
                Err(e) => return leg_failed("recovery", format!("fresh deployment: {e}")),
            };
            for chunk in &chunks[..kill_at] {
                doomed.apply_batch(chunk);
            }
            doomed.flush();
            // Dropping without shutdown is the kill: nothing but the WAL
            // (written before every apply) and cadence snapshots survive.
        }
        let mut recovered = match ShardedDynDens::with_persistence(
            AvgWeight,
            engine_config(),
            shard_config(2),
            persistence(),
        ) {
            Ok(fleet) => fleet,
            Err(e) => return leg_failed("recovery", format!("recovery: {e}")),
        };
        let pre_crash: u64 = chunks[..kill_at].iter().map(|c| c.len() as u64).sum();
        let recovered_seq: u64 = recovered
            .recovery_reports()
            .iter()
            .map(|r| r.recovered_seq)
            .sum();
        if recovered_seq != pre_crash {
            return leg_failed(
                "recovery",
                format!("recovered seq {recovered_seq} != {pre_crash} pre-crash updates"),
            );
        }
        for chunk in &chunks[kill_at..] {
            recovered.apply_batch(chunk);
        }
        recovered.flush();
        let verdict = compare(want, &sorted_bits(recovered.output_dense()));
        drop(recovered);
        let _ = std::fs::remove_dir_all(&dir);
        match verdict {
            Ok(()) => leg_ok(
                "recovery",
                format!("kill at update {pre_crash} + recover == never crashed"),
            ),
            Err(detail) => leg_failed("recovery", detail),
        }
    }

    fn rebalance_leg(&self, want: &[(VertexSet, u64)]) -> LegReport {
        let mut fleet = ShardedDynDens::new(AvgWeight, engine_config(), shard_config(2));
        let third = self.updates.len() / 3;
        for chunk in self.updates[..third].chunks(CHUNK) {
            fleet.apply_batch(chunk);
        }
        let split = match fleet.split_shard(0) {
            Ok(report) => report,
            Err(e) => return leg_failed("rebalance", format!("split: {e}")),
        };
        for chunk in self.updates[third..2 * third].chunks(CHUNK) {
            fleet.apply_batch(chunk);
        }
        if let Err(e) = fleet.merge_shards(split.slot, split.new_slot) {
            return leg_failed("rebalance", format!("merge: {e}"));
        }
        for chunk in self.updates[2 * third..].chunks(CHUNK) {
            fleet.apply_batch(chunk);
        }
        fleet.flush();
        if let Err(e) = fleet.validate() {
            return leg_failed("rebalance", e.to_string());
        }
        if fleet.stats().updates != self.updates.len() as u64 {
            return leg_failed(
                "rebalance",
                "split+merge lost or double-counted updates".into(),
            );
        }
        match compare(want, &sorted_bits(fleet.output_dense())) {
            Ok(()) => leg_ok(
                "rebalance",
                "split @1/3 + merge @2/3 == untouched topology".into(),
            ),
            Err(detail) => leg_failed("rebalance", detail),
        }
    }

    fn serve_leg(&self, want: &[(VertexSet, u64)]) -> LegReport {
        // Untruncated top-k makes resync snapshots complete; small retention
        // makes the late joiner genuinely take the resync path.
        let mut fleet = ShardedDynDens::new(
            AvgWeight,
            engine_config(),
            shard_config(2)
                .with_top_k(usize::MAX)
                .with_delta_retention(16),
        );
        let server = match StoryServer::builder(fleet.view())
            .workers(2)
            .bind("127.0.0.1:0")
        {
            Ok(server) => server,
            Err(e) => return leg_failed("serve", format!("bind: {e}")),
        };
        let addr = server.local_addr();
        let sub_client = match Client::builder()
            .read_timeout(Some(Duration::from_secs(60)))
            .connect(addr)
        {
            Ok(client) => client,
            Err(e) => return leg_failed("serve", format!("connect: {e}")),
        };
        let mut sub = match sub_client.subscribe(&[]) {
            Ok(sub) => sub,
            Err(e) => return leg_failed("serve", format!("subscribe: {e}")),
        };
        let mut mirror = Mirror::new();
        let drain =
            |mirror: &mut Mirror, sub: &mut dyndens_serve::Subscription| -> Result<(), String> {
                while let Some(batch) = sub.try_next().map_err(|e| e.to_string())? {
                    mirror.apply(&batch).map_err(|e| e.to_string())?;
                }
                Ok(())
            };
        for chunk in self.updates.chunks(CHUNK) {
            fleet.apply_batch(chunk);
            if let Err(e) = drain(&mut mirror, &mut sub) {
                return leg_failed("serve", e);
            }
        }
        fleet.flush();
        let target = fleet.view().per_shard_seq();
        while mirror.cursor() != target.as_slice() {
            match sub.recv() {
                Ok(Some(batch)) => {
                    if let Err(e) = mirror.apply(&batch) {
                        return leg_failed("serve", e.to_string());
                    }
                }
                Ok(None) => return leg_failed("serve", "server hung up mid-stream".into()),
                Err(e) => return leg_failed("serve", e.to_string()),
            }
        }
        // Push-fed mirror: exact set membership (densities ride deltas and
        // may trail until a resync, as on any delta-followed shard).
        let want_sets: Vec<VertexSet> = want.iter().map(|(s, _)| s.clone()).collect();
        if mirror.vertex_sets() != want_sets {
            return leg_failed("serve", "push-fed mirror story sets diverge".into());
        }
        // A late joiner bootstraps purely from resync snapshots, which carry
        // the engine's current scores: bit-exact sets *and* densities.
        let mut poll_client = match Client::builder().connect(addr) {
            Ok(client) => client,
            Err(e) => return leg_failed("serve", format!("late connect: {e}")),
        };
        let mut late = Mirror::new();
        loop {
            match late.poll(&mut poll_client) {
                Ok(true) => {}
                Ok(false) => break,
                Err(e) => return leg_failed("serve", format!("late poll: {e}")),
            }
        }
        match compare(want, &sorted_bits(late.story_sets())) {
            Ok(()) => leg_ok(
                "serve",
                format!(
                    "push-fed + late-resync mirrors == in-process view ({} events)",
                    mirror.events_applied()
                ),
            ),
            Err(detail) => leg_failed("serve", format!("late mirror: {detail}")),
        }
    }

    fn temp_dir(&self, tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dyndens-oracle-{}-{tag}-{}",
            self.name,
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }
}

// ---------------------------------------------------------------------------
// Cross-backend differential harness
// ---------------------------------------------------------------------------

/// The maintenance backends the cross-backend harness drives, each with its
/// canonical blueprint configuration (see [`Backend::compare_mode`] for the
/// comparison each is held to).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The incremental reference engine — the exactness referee itself.
    DynDens,
    /// Periodic full rebuild by log replay, driven at cadence 1 so every
    /// published answer lands on a rebuild boundary.
    Recompute,
    /// Read-time greedy peeling (fully-dynamic top-k densest style),
    /// extracting up to 4 disjoint subgraphs per component.
    TopKPeeling,
}

/// All three backends, in referee-first order.
pub const ALL_BACKENDS: [Backend; 3] = [Backend::DynDens, Backend::Recompute, Backend::TopKPeeling];

/// How a backend's answers are compared against the DynDens referee.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CompareMode {
    /// Story sets and density bits must match the referee exactly.
    BitExact,
    /// The top-q density ratio ([`top_q_density_ratio`]) must clear this
    /// bound.
    DensityRatio(f64),
}

impl Backend {
    /// The backend's stable kind string (matches
    /// [`EngineBlueprint::kind`]).
    pub fn kind(self) -> &'static str {
        match self {
            Backend::DynDens => "dyndens",
            Backend::Recompute => "recompute",
            Backend::TopKPeeling => "topk-peeling",
        }
    }

    /// The comparison mode this backend is held to against the referee:
    /// bit-exactness for DynDens (trivially) and for Recompute (its harness
    /// cadence of 1 makes every read a rebuild boundary), a 0.8 top-q
    /// density-ratio bound for the approximate peeling backend.
    pub fn compare_mode(self) -> CompareMode {
        match self {
            Backend::DynDens | Backend::Recompute => CompareMode::BitExact,
            Backend::TopKPeeling => CompareMode::DensityRatio(0.8),
        }
    }
}

/// The outcome of one backend × workload harness run: the deployment legs
/// (each asserting the sharded/recovered/rebalanced/served fleet is
/// bit-identical to a single engine of the *same* backend) plus the
/// `quality` leg comparing the backend against the DynDens referee under
/// [`Backend::compare_mode`]. In the `quality` leg's [`LegReport`],
/// `bit_exact` means "cleared its comparison mode".
#[derive(Debug, Clone, PartialEq)]
pub struct BackendReport {
    /// The workload's [`name`](Workload::name).
    pub workload: String,
    /// The backend's [`kind`](Backend::kind).
    pub backend: &'static str,
    /// Stream length in updates.
    pub n_updates: usize,
    /// The comparison mode the quality leg enforced.
    pub mode: CompareMode,
    /// Output-dense story count of the backend's single-engine run.
    pub output_dense: usize,
    /// Top-q density ratio against the DynDens referee (1.0 is parity).
    pub quality_ratio: f64,
    /// Star markers the referee created — must be 0 (the too-dense
    /// precondition of exact comparisons).
    pub star_markers: u64,
    /// Deployment legs plus the final `quality` leg.
    pub legs: Vec<LegReport>,
}

impl BackendReport {
    /// `true` when every leg (deployment self-consistency and quality)
    /// passed and the referee stayed below the too-dense regime.
    pub fn passed(&self) -> bool {
        self.star_markers == 0 && self.legs.iter().all(|l| l.bit_exact)
    }

    /// Panics with the first failure unless [`passed`](Self::passed).
    pub fn assert_passed(&self) {
        assert_eq!(
            self.star_markers, 0,
            "{}/{}: workload entered the too-dense regime",
            self.workload, self.backend
        );
        for leg in &self.legs {
            assert!(
                leg.bit_exact,
                "{}/{}: {} leg failed: {}",
                self.workload, self.backend, leg.leg, leg.detail
            );
        }
    }
}

/// Top-q density-ratio quality of a backend's story family against the
/// exact referee's, with `q = min(16, referee count)`: the backend's `q`
/// highest densities (missing entries contribute 0) summed, over the
/// referee's `q` highest densities summed. `1.0` when the referee is empty.
/// For backends whose extraction rule only admits members of the exact
/// output family (score at or above the output bound, cardinality at most
/// `Nmax`) the ratio never exceeds 1.
pub fn top_q_density_ratio(got: &[(VertexSet, u64)], referee: &[(VertexSet, u64)]) -> f64 {
    if referee.is_empty() {
        return 1.0;
    }
    let mut g: Vec<f64> = got.iter().map(|(_, bits)| f64::from_bits(*bits)).collect();
    let mut r: Vec<f64> = referee
        .iter()
        .map(|(_, bits)| f64::from_bits(*bits))
        .collect();
    g.sort_by(|a, b| b.total_cmp(a));
    r.sort_by(|a, b| b.total_cmp(a));
    let q = 16usize.min(r.len());
    let denom: f64 = r[..q].iter().sum();
    if denom <= 0.0 {
        return 1.0;
    }
    let numer: f64 = g[..q.min(g.len())].iter().sum();
    numer / denom
}

impl Oracle {
    /// Runs the full cross-backend harness for one backend: every requested
    /// deployment leg against a single engine of the same backend
    /// (bit-exact — the seam's determinism contract), then the `quality`
    /// leg against the DynDens referee under the backend's
    /// [`compare_mode`](Backend::compare_mode).
    pub fn run_backend(&self, backend: Backend) -> BackendReport {
        self.run_backend_legs(backend, &ALL_LEGS)
    }

    /// [`run_backend`](Self::run_backend) restricted to the given legs.
    pub fn run_backend_legs(&self, backend: Backend, legs: &[Leg]) -> BackendReport {
        let config = engine_config();
        match backend {
            Backend::DynDens => {
                self.backend_run(DynDensBlueprint::new(AvgWeight, config), backend, legs)
            }
            Backend::Recompute => {
                self.backend_run(RecomputeBlueprint::new(AvgWeight, config, 1), backend, legs)
            }
            Backend::TopKPeeling => self.backend_run(
                TopKPeelingBlueprint::new(AvgWeight, config, 4),
                backend,
                legs,
            ),
        }
    }

    fn backend_run<B: EngineBlueprint>(
        &self,
        blueprint: B,
        backend: Backend,
        legs: &[Leg],
    ) -> BackendReport {
        // The backend's own single-engine ground truth.
        let mut single = blueprint.fresh();
        let mut events = Vec::new();
        for u in &self.updates {
            single.apply_update_into(*u, &mut events);
            events.clear();
        }
        let mut reports = Vec::with_capacity(legs.len() + 1);
        if let Err(e) = single.validate() {
            reports.push(leg_failed("single", format!("backend invariants: {e}")));
        }
        let want = sorted_bits(single.output_dense_subgraphs());
        for leg in legs {
            reports.push(match leg {
                Leg::Sharded => self.backend_sharded_leg(&blueprint, &want),
                Leg::Recovery => self.backend_recovery_leg(&blueprint, backend, &want),
                Leg::Rebalance => self.backend_rebalance_leg(&blueprint, &want),
                Leg::Serve => self.backend_serve_leg(&blueprint, &want),
            });
        }
        // The quality leg: this backend vs. the exactness referee.
        let (referee, star_markers) = self.reference();
        let quality_ratio = top_q_density_ratio(&want, &referee);
        let mode = backend.compare_mode();
        reports.push(match mode {
            CompareMode::BitExact => match compare(&referee, &want) {
                Ok(()) => leg_ok(
                    "quality",
                    format!("bit-exact with referee ({} sets)", want.len()),
                ),
                Err(detail) => leg_failed("quality", format!("vs referee: {detail}")),
            },
            CompareMode::DensityRatio(bound) => {
                if quality_ratio >= bound {
                    leg_ok(
                        "quality",
                        format!(
                            "density ratio {quality_ratio:.3} >= {bound} ({} sets vs {} referee)",
                            want.len(),
                            referee.len()
                        ),
                    )
                } else {
                    leg_failed(
                        "quality",
                        format!("density ratio {quality_ratio:.3} below bound {bound}"),
                    )
                }
            }
        });
        BackendReport {
            workload: self.name.clone(),
            backend: backend.kind(),
            n_updates: self.updates.len(),
            mode,
            output_dense: want.len(),
            quality_ratio,
            star_markers,
            legs: reports,
        }
    }

    fn backend_sharded_leg<B: EngineBlueprint>(
        &self,
        blueprint: &B,
        want: &[(VertexSet, u64)],
    ) -> LegReport {
        for n_shards in [1usize, 2, 4] {
            let mut fleet = ShardedFleet::with_backend(blueprint.clone(), shard_config(n_shards));
            for chunk in self.updates.chunks(CHUNK) {
                fleet.apply_batch(chunk);
            }
            fleet.flush();
            if let Err(e) = fleet.validate() {
                return leg_failed("sharded", format!("{n_shards} shards: {e}"));
            }
            if let Err(detail) = compare(want, &sorted_bits(fleet.output_dense())) {
                return leg_failed("sharded", format!("{n_shards} shards: {detail}"));
            }
            if fleet.stats().updates != self.updates.len() as u64 {
                return leg_failed("sharded", format!("{n_shards} shards: ledger mismatch"));
            }
        }
        leg_ok(
            "sharded",
            format!("1/2/4 shards == single engine ({} sets)", want.len()),
        )
    }

    fn backend_recovery_leg<B: EngineBlueprint>(
        &self,
        blueprint: &B,
        backend: Backend,
        want: &[(VertexSet, u64)],
    ) -> LegReport {
        let dir = self.temp_dir(&format!("{}-recovery", backend.kind()));
        let persistence = || {
            PersistenceConfig::new(&dir)
                .with_fsync(FsyncPolicy::Never)
                .with_snapshot_every_batches(8)
        };
        let chunks: Vec<&[EdgeUpdate]> = self.updates.chunks(CHUNK).collect();
        let kill_at = chunks.len() / 2;
        {
            let mut doomed = match ShardedFleet::with_backend_persistence(
                blueprint.clone(),
                shard_config(2),
                persistence(),
            ) {
                Ok(fleet) => fleet,
                Err(e) => return leg_failed("recovery", format!("fresh deployment: {e}")),
            };
            for chunk in &chunks[..kill_at] {
                doomed.apply_batch(chunk);
            }
            doomed.flush();
        }
        let mut recovered = match ShardedFleet::with_backend_persistence(
            blueprint.clone(),
            shard_config(2),
            persistence(),
        ) {
            Ok(fleet) => fleet,
            Err(e) => return leg_failed("recovery", format!("recovery: {e}")),
        };
        let pre_crash: u64 = chunks[..kill_at].iter().map(|c| c.len() as u64).sum();
        let recovered_seq: u64 = recovered
            .recovery_reports()
            .iter()
            .map(|r| r.recovered_seq)
            .sum();
        if recovered_seq != pre_crash {
            return leg_failed(
                "recovery",
                format!("recovered seq {recovered_seq} != {pre_crash} pre-crash updates"),
            );
        }
        for chunk in &chunks[kill_at..] {
            recovered.apply_batch(chunk);
        }
        recovered.flush();
        let verdict = compare(want, &sorted_bits(recovered.output_dense()));
        drop(recovered);
        let _ = std::fs::remove_dir_all(&dir);
        match verdict {
            Ok(()) => leg_ok(
                "recovery",
                format!("kill at update {pre_crash} + recover == never crashed"),
            ),
            Err(detail) => leg_failed("recovery", detail),
        }
    }

    fn backend_rebalance_leg<B: EngineBlueprint>(
        &self,
        blueprint: &B,
        want: &[(VertexSet, u64)],
    ) -> LegReport {
        let mut fleet = ShardedFleet::with_backend(blueprint.clone(), shard_config(2));
        let third = self.updates.len() / 3;
        for chunk in self.updates[..third].chunks(CHUNK) {
            fleet.apply_batch(chunk);
        }
        let split = match fleet.split_shard(0) {
            Ok(report) => report,
            Err(e) => return leg_failed("rebalance", format!("split: {e}")),
        };
        for chunk in self.updates[third..2 * third].chunks(CHUNK) {
            fleet.apply_batch(chunk);
        }
        if let Err(e) = fleet.merge_shards(split.slot, split.new_slot) {
            return leg_failed("rebalance", format!("merge: {e}"));
        }
        for chunk in self.updates[2 * third..].chunks(CHUNK) {
            fleet.apply_batch(chunk);
        }
        fleet.flush();
        if let Err(e) = fleet.validate() {
            return leg_failed("rebalance", e.to_string());
        }
        if fleet.stats().updates != self.updates.len() as u64 {
            return leg_failed(
                "rebalance",
                "split+merge lost or double-counted updates".into(),
            );
        }
        match compare(want, &sorted_bits(fleet.output_dense())) {
            Ok(()) => leg_ok(
                "rebalance",
                "split @1/3 + merge @2/3 == untouched topology".into(),
            ),
            Err(detail) => leg_failed("rebalance", detail),
        }
    }

    /// The backend serve leg uses the late-join resync path only: backends
    /// that publish no per-update [`DenseEvent`](dyndens_core::DenseEvent)s
    /// (periodic rebuilders, read-time peelers) have empty delta streams, so
    /// a push-fed mirror would never materialise their stories. Resync
    /// snapshots carry the full story family regardless of backend. The
    /// push path itself is covered by the classic [`Oracle::run`] serve leg
    /// on DynDens.
    fn backend_serve_leg<B: EngineBlueprint>(
        &self,
        blueprint: &B,
        want: &[(VertexSet, u64)],
    ) -> LegReport {
        let mut fleet = ShardedFleet::with_backend(
            blueprint.clone(),
            shard_config(2)
                .with_top_k(usize::MAX)
                .with_delta_retention(16),
        );
        for chunk in self.updates.chunks(CHUNK) {
            fleet.apply_batch(chunk);
        }
        fleet.flush();
        let server = match StoryServer::builder(fleet.view())
            .workers(2)
            .bind("127.0.0.1:0")
        {
            Ok(server) => server,
            Err(e) => return leg_failed("serve", format!("bind: {e}")),
        };
        let mut poll_client = match Client::builder().connect(server.local_addr()) {
            Ok(client) => client,
            Err(e) => return leg_failed("serve", format!("connect: {e}")),
        };
        let mut mirror = Mirror::new();
        loop {
            match mirror.poll(&mut poll_client) {
                Ok(true) => {}
                Ok(false) => break,
                Err(e) => return leg_failed("serve", format!("poll: {e}")),
            }
        }
        match compare(want, &sorted_bits(mirror.story_sets())) {
            Ok(()) => leg_ok(
                "serve",
                format!("resync mirror == in-process view ({} sets)", want.len()),
            ),
            Err(detail) => leg_failed("serve", format!("resync mirror: {detail}")),
        }
    }
}

fn leg_ok(leg: &'static str, detail: String) -> LegReport {
    LegReport {
        leg,
        bit_exact: true,
        detail,
    }
}

fn leg_failed(leg: &'static str, detail: String) -> LegReport {
    LegReport {
        leg,
        bit_exact: false,
        detail,
    }
}

/// First divergence between two sorted bit-form story families, or `Ok`.
fn compare(want: &[(VertexSet, u64)], got: &[(VertexSet, u64)]) -> Result<(), String> {
    if want.len() != got.len() {
        return Err(format!(
            "{} story sets, reference has {}",
            got.len(),
            want.len()
        ));
    }
    for ((gs, gd), (ws, wd)) in got.iter().zip(want) {
        if gs != ws {
            return Err(format!("sets diverge: {gs} vs {ws}"));
        }
        if gd != wd {
            return Err(format!("score bits diverge on {gs}: {gd:#x} vs {wd:#x}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AlignedCommunities;

    #[test]
    fn oracle_passes_on_a_small_aligned_stream() {
        let report = Oracle::new(&AlignedCommunities::new(4_000, 17)).run_legs(&[Leg::Sharded]);
        assert_eq!(report.workload, "aligned_communities");
        assert_eq!(report.n_updates, 4_000);
        assert!(report.output_dense > 0);
        report.assert_bit_exact();
    }

    #[test]
    fn backend_harness_passes_on_a_small_aligned_stream() {
        let oracle = Oracle::new(&AlignedCommunities::new(2_000, 17));
        for backend in ALL_BACKENDS {
            let report = oracle.run_backend_legs(backend, &[Leg::Sharded]);
            assert_eq!(report.backend, backend.kind());
            assert!(report.output_dense > 0, "{}: no stories", report.backend);
            report.assert_passed();
            if backend != Backend::TopKPeeling {
                assert_eq!(report.quality_ratio, 1.0, "{}", report.backend);
            }
        }
    }

    #[test]
    fn density_ratio_handles_degenerate_families() {
        let some = vec![(VertexSet::from_ids(&[0, 1]), 1.25f64.to_bits())];
        assert_eq!(top_q_density_ratio(&[], &[]), 1.0);
        assert_eq!(top_q_density_ratio(&some, &[]), 1.0);
        assert_eq!(top_q_density_ratio(&[], &some), 0.0);
        assert_eq!(top_q_density_ratio(&some, &some), 1.0);
    }

    #[test]
    fn compare_reports_first_divergence() {
        let oracle = Oracle::from_updates("probe", AlignedCommunities::new(4_000, 3).updates());
        let (want, markers) = oracle.reference();
        assert_eq!(markers, 0);
        assert!(!want.is_empty());
        assert!(compare(&want, &want).is_ok());
        assert!(compare(&want, &[]).unwrap_err().contains("story sets"));
        let mut bent = want.clone();
        bent[0].1 ^= 1;
        assert!(compare(&want, &bent).unwrap_err().contains("score bits"));
    }
}
